package window

import (
	"fmt"
	"sort"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// This file extends the sliding-window sampler to the distributed
// coordinator model — a first cut at the paper's Section 6 open problem.
// Message-optimal distributed window sampling is open; this protocol is
// *exact* and empirically far below send-everything, which is what a
// downstream user needs and what gives the open problem a baseline.
//
// Protocol (synchronous rounds, like Section 2.1):
//
//   - The coordinator publishes a threshold: the s-th largest key among
//     items in the current window (0 while the window holds < s items).
//   - A site receiving an item generates its key. Keys above the
//     published threshold are sent immediately; the rest are buffered.
//     Unlike the infinite-window threshold u of the main algorithm, the
//     window threshold is NOT monotone: when a heavy item expires the
//     threshold falls, and previously buffered keys may become sample
//     members. The coordinator therefore re-broadcasts on falls, and
//     sites respond by flushing newly eligible buffered items within the
//     same round.
//   - Buffers stay small: a buffered item is discarded once s *later*
//     local items carry larger keys (later items outlive it in every
//     window, so it can never re-enter a sample), and once it leaves the
//     window. Expected buffer size is O(s·log(width/s)).
//
// Invariant after every round: every buffered key at every site is at
// most the coordinator's current s-th window key, hence the coordinator's
// top-s over received items equals the top-s over all items — the query
// is exact at every instant.

// SlideMsg is a protocol message for the sliding-window sampler.
type SlideMsg struct {
	// Candidate (site -> coordinator):
	Pos  int
	Key  float64
	Item stream.Item
	// Threshold update (coordinator -> sites):
	Threshold float64
	IsThresh  bool
}

// Words returns the message size in machine words.
func (m SlideMsg) Words() int {
	if m.IsThresh {
		return 2
	}
	return 5
}

// SlideSite is the per-site state machine.
type SlideSite struct {
	s         int
	width     int
	rng       *xrand.RNG
	threshold float64
	buf       []entry // unsent items, ascending Pos

	// KeyHook, when set, receives every generated key (tests).
	KeyHook func(id uint64, key float64)
	// Sent counts candidate messages.
	Sent int64
}

// NewSlideSite returns a site for sample size s and window width.
func NewSlideSite(s, width int, rng *xrand.RNG) (*SlideSite, error) {
	if s < 1 || width < 1 {
		return nil, fmt.Errorf("window: need s >= 1 and width >= 1, got %d, %d", s, width)
	}
	return &SlideSite{s: s, width: width, rng: rng}, nil
}

// Observe processes a local arrival at global position pos.
func (d *SlideSite) Observe(pos int, it stream.Item, send func(SlideMsg)) error {
	if !(it.Weight > 0) {
		return fmt.Errorf("window: weight must be positive, got %v", it.Weight)
	}
	key := d.rng.ExpKey(it.Weight)
	if d.KeyHook != nil {
		d.KeyHook(it.ID, key)
	}
	d.expire(pos)
	// Dominance update against the new local arrival.
	dst := d.buf[:0]
	for i := range d.buf {
		e := d.buf[i]
		if e.Key < key {
			e.dominators++
		}
		if e.dominators < d.s {
			dst = append(dst, e)
		}
	}
	d.buf = dst
	if key > d.threshold {
		d.Sent++
		send(SlideMsg{Pos: pos, Key: key, Item: it})
		return nil
	}
	d.buf = append(d.buf, entry{Entry: Entry{Pos: pos, Key: key, Item: it}})
	return nil
}

// HandleBroadcast applies a threshold update; items that became eligible
// are flushed through send.
func (d *SlideSite) HandleBroadcast(m SlideMsg, send func(SlideMsg)) {
	if !m.IsThresh {
		return
	}
	d.threshold = m.Threshold
	d.expire(m.Pos) // broadcasts carry the global clock
	dst := d.buf[:0]
	for _, e := range d.buf {
		if e.Key > d.threshold {
			d.Sent++
			send(SlideMsg{Pos: e.Pos, Key: e.Key, Item: e.Item})
		} else {
			dst = append(dst, e)
		}
	}
	d.buf = dst
}

// expire drops buffered items that left the window ending at pos.
func (d *SlideSite) expire(pos int) {
	lo := pos + 1 - d.width
	trim := 0
	for trim < len(d.buf) && d.buf[trim].Pos < lo {
		trim++
	}
	d.buf = d.buf[trim:]
}

// Buffered returns the current buffer size.
func (d *SlideSite) Buffered() int { return len(d.buf) }

// Threshold returns the site's current published threshold.
func (d *SlideSite) Threshold() float64 { return d.threshold }

// SlideCoordinator maintains the exact window sample over received
// candidates and publishes the s-th window key.
type SlideCoordinator struct {
	s         int
	width     int
	kept      []entry // received, pruned; ascending Pos
	published float64
	now       int // latest global position

	// Broadcasts counts threshold announcements (each costs k messages);
	// Falls counts the announcements caused by expiring sample members —
	// the non-monotonicity that makes the window problem hard.
	Broadcasts int64
	Falls      int64
}

// NewSlideCoordinator returns the coordinator for sample size s and
// window width.
func NewSlideCoordinator(s, width int) (*SlideCoordinator, error) {
	if s < 1 || width < 1 {
		return nil, fmt.Errorf("window: need s >= 1 and width >= 1, got %d, %d", s, width)
	}
	return &SlideCoordinator{s: s, width: width, now: -1}, nil
}

// HandleMessage folds one candidate.
func (c *SlideCoordinator) HandleMessage(m SlideMsg) {
	if m.IsThresh {
		return
	}
	if m.Pos > c.now {
		c.now = m.Pos
	}
	// Insert in position order (tail scan: streams are nearly sorted).
	i := len(c.kept)
	for i > 0 && c.kept[i-1].Pos > m.Pos {
		i--
	}
	c.kept = append(c.kept, entry{})
	copy(c.kept[i+1:], c.kept[i:])
	c.kept[i] = entry{Entry: Entry{Pos: m.Pos, Key: m.Key, Item: m.Item}}
	dom := 0
	for j := i + 1; j < len(c.kept); j++ {
		if c.kept[j].Key > m.Key {
			dom++
		}
	}
	c.kept[i].dominators = dom
	for j := 0; j < i; j++ {
		if c.kept[j].Key < m.Key {
			c.kept[j].dominators++
		}
	}
}

// EndOfArrival is called by the synchronous driver after the arrival at
// global position pos (and any same-round flushes) has been delivered.
// It prunes, recomputes the s-th window key, and returns a threshold
// announcement to broadcast, if one is needed. needFlush reports whether
// the threshold fell (sites may now send more items, so the driver must
// deliver the broadcast and then call EndOfArrival again).
func (c *SlideCoordinator) EndOfArrival(pos int) (m SlideMsg, broadcast, needFlush bool) {
	if pos > c.now {
		c.now = pos
	}
	c.compact()
	th := c.sthKey()
	switch {
	case th < c.published:
		c.published = th
		c.Broadcasts++
		c.Falls++
		return SlideMsg{IsThresh: true, Threshold: th, Pos: c.now}, true, true
	case th > c.published:
		// A rise is an optimization only (fewer future sends): buffered
		// keys are all <= the old threshold, so nothing becomes newly
		// eligible and no flush round is needed.
		c.published = th
		c.Broadcasts++
		return SlideMsg{IsThresh: true, Threshold: th, Pos: c.now}, true, false
	default:
		return SlideMsg{}, false, false
	}
}

func (c *SlideCoordinator) compact() {
	lo := c.now + 1 - c.width
	dst := c.kept[:0]
	for _, e := range c.kept {
		if e.Pos >= lo && e.dominators < c.s {
			dst = append(dst, e)
		}
	}
	c.kept = dst
}

// sthKey returns the s-th largest key in the current window (0 if the
// window holds fewer than s received items).
func (c *SlideCoordinator) sthKey() float64 {
	lo := c.now + 1 - c.width
	keys := make([]float64, 0, len(c.kept))
	for _, e := range c.kept {
		if e.Pos >= lo {
			keys = append(keys, e.Key)
		}
	}
	if len(keys) < c.s {
		return 0
	}
	sort.Float64s(keys)
	return keys[len(keys)-c.s]
}

// Query returns the exact weighted SWOR of the current window, largest
// key first.
func (c *SlideCoordinator) Query() []Entry {
	lo := c.now + 1 - c.width
	out := make([]Entry, 0, len(c.kept))
	for _, e := range c.kept {
		if e.Pos >= lo {
			out = append(out, e.Entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key > out[j].Key })
	if len(out) > c.s {
		out = out[:c.s]
	}
	return out
}

// Retained returns the coordinator's buffered item count.
func (c *SlideCoordinator) Retained() int { return len(c.kept) }

// Published returns the currently published threshold.
func (c *SlideCoordinator) Published() float64 { return c.published }

// SlideCluster is the synchronous driver wiring k sites to the
// coordinator, with message accounting (broadcast = k messages).
type SlideCluster struct {
	Coord *SlideCoordinator
	Sites []*SlideSite
	pos   int

	Upstream   int64
	Downstream int64
}

// NewSlideCluster builds a cluster of k sites.
func NewSlideCluster(k, s, width int, master *xrand.RNG) (*SlideCluster, error) {
	coord, err := NewSlideCoordinator(s, width)
	if err != nil {
		return nil, err
	}
	cl := &SlideCluster{Coord: coord}
	for i := 0; i < k; i++ {
		site, err := NewSlideSite(s, width, master.Split())
		if err != nil {
			return nil, err
		}
		cl.Sites = append(cl.Sites, site)
	}
	return cl, nil
}

// Feed delivers the next global arrival to a site and settles the round.
func (cl *SlideCluster) Feed(siteID int, it stream.Item) error {
	if siteID < 0 || siteID >= len(cl.Sites) {
		return fmt.Errorf("window: site %d out of range", siteID)
	}
	pos := cl.pos
	cl.pos++
	up := func(m SlideMsg) {
		cl.Upstream++
		cl.Coord.HandleMessage(m)
	}
	if err := cl.Sites[siteID].Observe(pos, it, up); err != nil {
		return err
	}
	// Settle: thresholds may fall (expiry) then rise (flushed items);
	// each EndOfArrival round either stabilizes or broadcasts.
	for rounds := 0; ; rounds++ {
		m, broadcast, needFlush := cl.Coord.EndOfArrival(pos)
		if !broadcast {
			return nil
		}
		cl.Downstream += int64(len(cl.Sites))
		for _, s := range cl.Sites {
			s.HandleBroadcast(m, up)
		}
		if !needFlush {
			return nil
		}
		if rounds > 2*len(cl.Sites)+4 {
			return fmt.Errorf("window: settle loop did not converge")
		}
	}
}

// N returns the number of arrivals fed so far.
func (cl *SlideCluster) N() int { return cl.pos }
