package window

import (
	"math"
	"sort"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

type keyRec struct {
	pos  int
	id   uint64
	key  float64
	item stream.Item
}

// bruteTop returns the top-min(s,window) ids of the last `width` keys.
func bruteTop(recs []keyRec, width, s int) map[uint64]bool {
	lo := len(recs) - width
	if lo < 0 {
		lo = 0
	}
	win := append([]keyRec(nil), recs[lo:]...)
	sort.Slice(win, func(i, j int) bool { return win[i].key > win[j].key })
	if len(win) > s {
		win = win[:s]
	}
	out := map[uint64]bool{}
	for _, r := range win {
		out[r.id] = true
	}
	return out
}

func TestWindowMatchesBruteForceEveryStep(t *testing.T) {
	for _, cfg := range []struct{ s, width int }{
		{1, 10}, {3, 25}, {5, 100}, {10, 7}, // width < s included
	} {
		w, err := New(cfg.s, cfg.width, xrand.New(uint64(cfg.s*100+cfg.width)))
		if err != nil {
			t.Fatal(err)
		}
		var recs []keyRec
		w.KeyHook = func(id uint64, key float64) {
			recs = append(recs, keyRec{pos: len(recs), id: id, key: key})
		}
		rng := xrand.New(9)
		for i := 0; i < 600; i++ {
			it := stream.Item{ID: uint64(i), Weight: 1 + 99*rng.Float64()}
			if err := w.Observe(it); err != nil {
				t.Fatal(err)
			}
			want := bruteTop(recs, cfg.width, cfg.s)
			got := w.Sample()
			if len(got) != len(want) {
				t.Fatalf("s=%d width=%d step %d: sample size %d, want %d",
					cfg.s, cfg.width, i, len(got), len(want))
			}
			for _, e := range got {
				if !want[e.Item.ID] {
					t.Fatalf("s=%d width=%d step %d: item %d not in brute-force top set",
						cfg.s, cfg.width, i, e.Item.ID)
				}
			}
			for j := 1; j < len(got); j++ {
				if got[j].Key > got[j-1].Key {
					t.Fatal("sample not sorted desc")
				}
			}
		}
	}
}

func TestWindowRetainedIsSublinear(t *testing.T) {
	const s, width, n = 8, 10000, 50000
	w, err := New(s, width, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	maxRetained := 0
	for i := 0; i < n; i++ {
		if err := w.Observe(stream.Item{ID: uint64(i), Weight: 1 + rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		if r := w.Retained(); r > maxRetained {
			maxRetained = r
		}
	}
	// Expected O(s * log(width/s)) ~ 8 * 7.1 = 57; allow a wide margin.
	bound := 6 * float64(s) * (1 + math.Log(float64(width)/float64(s)))
	if float64(maxRetained) > bound {
		t.Errorf("retained reached %d, want O(s log(width/s)) <= %v", maxRetained, bound)
	}
	if maxRetained >= width/10 {
		t.Errorf("retained %d not sublinear in width %d", maxRetained, width)
	}
	t.Logf("max retained: %d (window %d)", maxRetained, width)
}

func TestWindowInclusionDistribution(t *testing.T) {
	// Within a full window, inclusion must follow the weighted SWOR law
	// on the window's items: heavier items more likely.
	const s, width, trials = 2, 5, 30000
	weights := []float64{1, 2, 4, 8, 16}
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		w, _ := New(s, width, xrand.New(uint64(tr)*31+1))
		// Prefix noise that must be forgotten entirely.
		for i := 0; i < 7; i++ {
			w.Observe(stream.Item{ID: 999, Weight: 1000})
		}
		for i, wt := range weights {
			w.Observe(stream.Item{ID: uint64(i), Weight: wt})
		}
		for _, e := range w.Sample() {
			if e.Item.ID == 999 {
				t.Fatal("expired item sampled")
			}
			counts[e.Item.ID]++
		}
	}
	// Compare against exact inclusion probabilities for {1,2,4,8,16}, s=2
	// (computed by the sample package oracle in its own tests; here just
	// check monotonicity and a coarse range for the heaviest item).
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Errorf("window inclusion not monotone in weight: %v", counts)
		}
	}
	pHeavy := counts[4] / trials
	if pHeavy < 0.78 || pHeavy > 0.88 {
		t.Errorf("heaviest inclusion = %v, want ~0.825", pHeavy)
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := New(0, 5, xrand.New(1)); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := New(5, 0, xrand.New(1)); err == nil {
		t.Error("width=0 accepted")
	}
	w, _ := New(1, 5, xrand.New(1))
	if err := w.Observe(stream.Item{Weight: -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWindowSmallStream(t *testing.T) {
	w, _ := New(3, 100, xrand.New(2))
	if got := w.Sample(); len(got) != 0 {
		t.Fatalf("empty sampler returned %d items", len(got))
	}
	w.Observe(stream.Item{ID: 1, Weight: 5})
	if got := w.Sample(); len(got) != 1 || got[0].Item.ID != 1 {
		t.Fatalf("single-item sample wrong: %v", got)
	}
	if w.N() != 1 {
		t.Errorf("N = %d", w.N())
	}
}
