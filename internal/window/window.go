// Package window implements weighted sampling without replacement over a
// sliding window — the extension the paper poses as future work in its
// conclusion ("extend our algorithm for weighted sampling to the sliding
// window model"). This is the centralized (single-stream) building block:
// a sequence-based window of the most recent `width` items, over which a
// weighted SWOR of size s is maintained at every step.
//
// It uses the same precision-sampling keys as the rest of the library
// (v = w/t, t ~ Exp(1)); the sample for any window is the top-s keys
// among the items in it. The structure retains exactly the items that
// could still enter some future sample: an item can be discarded once s
// *later* items hold larger keys, because every window that contains the
// item also contains all later items (windows are suffixes). The expected
// number of retained items is O(s·log(width/s)) — the classic bound for
// such dominance lists.
package window

import (
	"fmt"
	"math"
	"sort"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Entry is a retained item with its key and global arrival position.
type Entry struct {
	Pos  int
	Key  float64
	Item stream.Item
}

// Sampler maintains a weighted SWOR of size s over the last `width`
// arrivals.
type Sampler struct {
	s     int
	width int
	rng   *xrand.RNG
	n     int
	kept  []entry // ascending by Pos

	// KeyHook, when set, receives every generated key (tests).
	KeyHook func(id uint64, key float64)
}

type entry struct {
	Entry
	dominators int // later items with larger keys (monotone)
}

// New returns a sliding-window sampler with sample size s and window
// width in items.
func New(s, width int, rng *xrand.RNG) (*Sampler, error) {
	if s < 1 || width < 1 {
		return nil, fmt.Errorf("window: need s >= 1 and width >= 1, got %d, %d", s, width)
	}
	return &Sampler{s: s, width: width, rng: rng}, nil
}

// Observe feeds one item; weights must be positive and finite.
func (w *Sampler) Observe(it stream.Item) error {
	if !(it.Weight > 0) || math.IsInf(it.Weight, 0) || math.IsNaN(it.Weight) {
		return fmt.Errorf("window: weight must be positive and finite, got %v", it.Weight)
	}
	pos := w.n
	w.n++
	key := w.rng.ExpKey(it.Weight)
	if w.KeyHook != nil {
		w.KeyHook(it.ID, key)
	}
	// Expire items that left the window: window = [n-width, n-1].
	lo := w.n - w.width
	trim := 0
	for trim < len(w.kept) && w.kept[trim].Pos < lo {
		trim++
	}
	w.kept = w.kept[trim:]
	// The new arrival dominates every retained item with a smaller key;
	// an item with s dominators can never re-enter a sample (all its
	// dominators live in every window that still contains it).
	dst := w.kept[:0]
	for i := range w.kept {
		e := w.kept[i]
		if e.Key < key {
			e.dominators++
		}
		if e.dominators < w.s {
			dst = append(dst, e)
		}
	}
	w.kept = append(dst, entry{Entry: Entry{Pos: pos, Key: key, Item: it}})
	return nil
}

// Sample returns the weighted SWOR of the current window: the items with
// the top min(s, window size) keys, largest first.
func (w *Sampler) Sample() []Entry {
	out := make([]Entry, 0, len(w.kept))
	for _, e := range w.kept {
		out = append(out, e.Entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key > out[j].Key })
	if len(out) > w.s {
		out = out[:w.s]
	}
	return out
}

// Retained returns the number of items currently stored — expected
// O(s·log(width/s)), far below width.
func (w *Sampler) Retained() int { return len(w.kept) }

// N returns the number of items observed so far.
func (w *Sampler) N() int { return w.n }
