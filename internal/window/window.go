// Package window implements weighted sampling without replacement over a
// sliding window — the extension the paper poses as future work in its
// conclusion ("extend our algorithm for weighted sampling to the sliding
// window model"). This is the centralized (single-stream) building block:
// a sequence-based window of the most recent `width` items, over which a
// weighted SWOR of size s is maintained at every step.
//
// It uses the same precision-sampling keys as the rest of the library
// (v = w/t, t ~ Exp(1)); the sample for any window is the top-s keys
// among the items in it. The structure retains exactly the items that
// could still enter some future sample: an item can be discarded once s
// *later* items hold larger keys, because every window that contains the
// item also contains all later items (windows are suffixes). The expected
// number of retained items is O(s·log(width/s)) — the classic bound for
// such dominance lists.
//
// The retention logic is factored into Retention, which is generalized
// for external sequence sources (caller-supplied positions, keys, and
// clock advances): the distributed windowed application (internal/core's
// WindowCoordinator) keeps one Retention per site sub-stream, fed from
// sequence-stamped protocol messages.
package window

import (
	"fmt"
	"math"
	"sort"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Entry is a retained item with its key and arrival position within its
// sub-stream.
type Entry struct {
	Pos  int
	Key  float64
	Item stream.Item
}

// TopEntries sorts entries by descending key in place — ties, which
// have measure zero, break by item ID so every windowed query path is
// a deterministic function of its candidate set — and truncates to s.
// It is the finishing step for AppendEntries results, always run
// outside any ingest lock.
func TopEntries(entries []Entry, s int) []Entry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key > entries[j].Key
		}
		return entries[i].Item.ID < entries[j].Item.ID
	})
	if len(entries) > s {
		entries = entries[:s]
	}
	return entries
}

// Sampler maintains a weighted SWOR of size s over the last `width`
// arrivals of a single stream: it draws a key per arrival from its own
// RNG and feeds the shared Retention structure in arrival order.
type Sampler struct {
	ret *Retention
	rng *xrand.RNG

	// KeyHook, when set, receives every generated key (tests).
	KeyHook func(id uint64, key float64)
}

type entry struct {
	Entry
	dominators int // later items with larger keys (monotone)
}

// New returns a sliding-window sampler with sample size s and window
// width in items.
func New(s, width int, rng *xrand.RNG) (*Sampler, error) {
	ret, err := NewRetention(s, width)
	if err != nil {
		return nil, err
	}
	return &Sampler{ret: ret, rng: rng}, nil
}

// Observe feeds one item; weights must be positive and finite.
func (w *Sampler) Observe(it stream.Item) error {
	if !(it.Weight > 0) || math.IsInf(it.Weight, 0) || math.IsNaN(it.Weight) {
		return fmt.Errorf("window: weight must be positive and finite, got %v", it.Weight)
	}
	key := w.rng.ExpKey(it.Weight)
	if w.KeyHook != nil {
		w.KeyHook(it.ID, key)
	}
	w.ret.Add(w.ret.Count(), key, it)
	return nil
}

// Sample returns the weighted SWOR of the current window: the items with
// the top min(s, window size) keys, largest first.
func (w *Sampler) Sample() []Entry { return w.ret.Sample() }

// Retained returns the number of items currently stored — expected
// O(s·log(width/s)), far below width.
func (w *Sampler) Retained() int { return w.ret.Retained() }

// N returns the number of items observed so far.
func (w *Sampler) N() int { return w.ret.Count() }
