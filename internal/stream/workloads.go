package stream

import (
	"math"

	"wrs/internal/xrand"
)

// ---- Weight functions -------------------------------------------------

// UnitWeights gives every item weight 1 (the unweighted special case the
// lower bound of Corollary 2 reduces to).
func UnitWeights() WeightFn {
	return func(int, *xrand.RNG) float64 { return 1 }
}

// UniformWeights draws weights uniformly from [1, maxW].
func UniformWeights(maxW float64) WeightFn {
	return func(_ int, rng *xrand.RNG) float64 {
		return 1 + (maxW-1)*rng.Float64()
	}
}

// ZipfWeights assigns weight proportional to 1/rank^alpha where the rank
// of each arriving item is drawn uniformly from [1, universe]. This gives
// the skewed distributions for which the paper argues SWOR beats SWR.
func ZipfWeights(alpha float64, universe int) WeightFn {
	return func(_ int, rng *xrand.RNG) float64 {
		rank := 1 + rng.Intn(universe)
		return math.Pow(float64(universe), alpha) / math.Pow(float64(rank), alpha)
	}
}

// ParetoWeights draws i.i.d. Pareto(alpha) weights (support [1, inf)).
func ParetoWeights(alpha float64) WeightFn {
	return func(_ int, rng *xrand.RNG) float64 { return rng.Pareto(alpha) }
}

// HeavyHeadWeights plants `heavy` items of weight heavyW at the front of
// the stream and gives everything else weight 1. This is the adversarial
// shape from Section 1.2: a few items that dominate the total weight,
// which with-replacement samplers resample over and over and which naive
// SWOR reductions cannot handle.
func HeavyHeadWeights(heavy int, heavyW float64) WeightFn {
	return func(pos int, _ *xrand.RNG) float64 {
		if pos < heavy {
			return heavyW
		}
		return 1
	}
}

// GeometricWeights gives item i weight base^i scaled by eps as in the
// Theorem 5 lower-bound instance: w_0 = 1, w_i = eps*(1+eps)^i, so every
// arriving item is an eps/2 heavy hitter at its arrival time.
func GeometricWeights(eps float64) WeightFn {
	return func(pos int, _ *xrand.RNG) float64 {
		if pos == 0 {
			return 1
		}
		return eps * math.Pow(1+eps, float64(pos))
	}
}

// IntegerWeights rounds another weight function up to integers, as
// required by the SWR duplication reduction of Section 2.2.
func IntegerWeights(fn WeightFn) WeightFn {
	return func(pos int, rng *xrand.RNG) float64 {
		return math.Ceil(fn(pos, rng))
	}
}

// ---- Site assignment functions -----------------------------------------

// RoundRobin deals updates to sites cyclically.
func RoundRobin(k int) AssignFn {
	return func(pos int, _ *xrand.RNG) int { return pos % k }
}

// RandomSites assigns each update to a uniformly random site.
func RandomSites(k int) AssignFn {
	return func(_ int, rng *xrand.RNG) int { return rng.Intn(k) }
}

// Contiguous splits the stream into k equal contiguous blocks, one per
// site — an adversarial interleaving (one site is completely silent until
// another finishes).
func Contiguous(k, n int) AssignFn {
	block := (n + k - 1) / k
	return func(pos int, _ *xrand.RNG) int {
		s := pos / block
		if s >= k {
			s = k - 1
		}
		return s
	}
}

// SingleSite sends the whole stream to site 0 (the centralized extreme).
func SingleSite() AssignFn {
	return func(int, *xrand.RNG) int { return 0 }
}

// EpochBlocks implements the Theorem 7 lower-bound interleaving: in epoch
// i there are k^(i+1) - k^i unit updates distributed over the k sites in
// contiguous runs, so that within an epoch each site receives one batch
// and cannot know whether it was first.
func EpochBlocks(k int) AssignFn {
	return func(pos int, _ *xrand.RNG) int {
		// Epoch boundaries at k^1, k^2, ...; within an epoch [k^i, k^(i+1))
		// the range is divided into k contiguous runs.
		p := pos + 1 // 1-based so epoch 0 = [1, k)
		lo := 1
		for lo*k <= p {
			lo *= k
		}
		hi := lo * k
		span := hi - lo
		run := (p - lo) * k / span
		if run >= k {
			run = k - 1
		}
		return run
	}
}
