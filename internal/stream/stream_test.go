package stream

import (
	"math"
	"testing"
	"testing/quick"

	"wrs/internal/xrand"
)

func TestGeneratorBasics(t *testing.T) {
	rng := xrand.New(1)
	g := NewGenerator(100, 4, UnitWeights(), RoundRobin(4))
	s := g.Materialize(rng)
	if len(s.Updates) != 100 {
		t.Fatalf("got %d updates, want 100", len(s.Updates))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, u := range s.Updates {
		if u.Pos != i {
			t.Fatalf("update %d has Pos %d", i, u.Pos)
		}
		if u.Site != i%4 {
			t.Fatalf("round robin broken at %d: site %d", i, u.Site)
		}
		if u.Item.Weight != 1 {
			t.Fatalf("unit weight broken at %d: %v", i, u.Item.Weight)
		}
	}
	if w := s.TotalWeight(); w != 100 {
		t.Fatalf("total weight %v, want 100", w)
	}
}

func TestGeneratorReset(t *testing.T) {
	rng := xrand.New(2)
	g := NewGenerator(10, 2, UnitWeights(), RoundRobin(2))
	a := g.Materialize(rng)
	b := g.Materialize(rng)
	if len(a.Updates) != len(b.Updates) {
		t.Fatalf("reset failed: %d vs %d", len(a.Updates), len(b.Updates))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(500, 8, ParetoWeights(1.2), RandomSites(8))
	g2 := NewGenerator(500, 8, ParetoWeights(1.2), RandomSites(8))
	s1 := g1.Materialize(xrand.New(99))
	s2 := g2.Materialize(xrand.New(99))
	for i := range s1.Updates {
		if s1.Updates[i] != s2.Updates[i] {
			t.Fatalf("determinism broken at %d: %v vs %v", i, s1.Updates[i], s2.Updates[i])
		}
	}
}

func TestWeightFunctionsPositive(t *testing.T) {
	rng := xrand.New(3)
	fns := map[string]WeightFn{
		"unit":      UnitWeights(),
		"uniform":   UniformWeights(1000),
		"zipf":      ZipfWeights(1.5, 10000),
		"pareto":    ParetoWeights(1.1),
		"heavyhead": HeavyHeadWeights(10, 1e9),
		"geometric": GeometricWeights(0.1),
	}
	for name, fn := range fns {
		for pos := 0; pos < 2000; pos++ {
			w := fn(pos, rng)
			if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
				t.Fatalf("%s weight at pos %d invalid: %v", name, pos, w)
			}
		}
	}
}

func TestAssignFnsCoverAllSites(t *testing.T) {
	rng := xrand.New(4)
	const k, n = 7, 10000
	fns := map[string]AssignFn{
		"roundrobin": RoundRobin(k),
		"random":     RandomSites(k),
		"contiguous": Contiguous(k, n),
		"epoch":      EpochBlocks(k),
	}
	for name, fn := range fns {
		seen := make([]bool, k)
		for pos := 0; pos < n; pos++ {
			s := fn(pos, rng)
			if s < 0 || s >= k {
				t.Fatalf("%s assigned site %d", name, s)
			}
			seen[s] = true
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("%s never used site %d", name, i)
			}
		}
	}
}

func TestContiguousIsMonotone(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		k := int(kRaw%16) + 1
		n := int(nRaw%2000) + k
		fn := Contiguous(k, n)
		prev := 0
		for pos := 0; pos < n; pos++ {
			s := fn(pos, nil)
			if s < prev || s >= k {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeometricWeightsAreHeavyAtArrival(t *testing.T) {
	// The Theorem 5 construction: each new item must be an eps/2 heavy
	// hitter of everything so far.
	const eps = 0.2
	fn := GeometricWeights(eps)
	var total float64
	for pos := 0; pos < 200; pos++ {
		w := fn(pos, nil)
		total += w
		if w < (eps/2)*total {
			t.Fatalf("item %d (w=%v) is not an eps/2 HH of total %v", pos, w, total)
		}
	}
}

func TestHeavyHeadDominance(t *testing.T) {
	// 5 heavy items at 1e9 dominate 1e5 unit items.
	fn := HeavyHeadWeights(5, 1e9)
	var heavy, light float64
	for pos := 0; pos < 100000; pos++ {
		w := fn(pos, nil)
		if pos < 5 {
			heavy += w
		} else {
			light += w
		}
	}
	if heavy < 1000*light {
		t.Fatalf("heavy head does not dominate: %v vs %v", heavy, light)
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	s := &Stream{K: 2, Updates: []Update{{Pos: 0, Site: 0, Item: Item{ID: 0, Weight: -1}}}}
	if err := s.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	s = &Stream{K: 2, Updates: []Update{{Pos: 0, Site: 5, Item: Item{ID: 0, Weight: 1}}}}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range site accepted")
	}
	s = &Stream{K: 2, Updates: []Update{{Pos: 0, Site: 1, Item: Item{ID: 0, Weight: math.NaN()}}}}
	if err := s.Validate(); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestEpochBlocksStructure(t *testing.T) {
	// Within epoch [k^i, k^(i+1)), assignments must be k contiguous runs.
	const k = 4
	fn := EpochBlocks(k)
	for _, bounds := range [][2]int{{1, 4}, {4, 16}, {16, 64}, {64, 256}} {
		lo, hi := bounds[0], bounds[1]
		prev := -1
		for p := lo; p < hi; p++ {
			s := fn(p-1, nil) // AssignFn takes 0-based pos
			if s < prev {
				t.Fatalf("epoch [%d,%d): site decreased from %d to %d at %d", lo, hi, prev, s, p)
			}
			prev = s
		}
	}
}

func TestGeneratorAccessors(t *testing.T) {
	g := NewGenerator(42, 3, UnitWeights(), RoundRobin(3))
	if g.Len() != 42 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.K() != 3 {
		t.Errorf("K = %d", g.K())
	}
}

func TestNewGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative n": func() { NewGenerator(-1, 2, UnitWeights(), RoundRobin(2)) },
		"zero k":     func() { NewGenerator(5, 0, UnitWeights(), RoundRobin(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIntegerWeightsCeils(t *testing.T) {
	rng := xrand.New(50)
	fn := IntegerWeights(UniformWeights(9.5))
	for i := 0; i < 1000; i++ {
		w := fn(i, rng)
		if w != math.Floor(w) || w < 1 {
			t.Fatalf("IntegerWeights produced %v", w)
		}
	}
}

func TestSingleSiteAssignsZero(t *testing.T) {
	fn := SingleSite()
	for i := 0; i < 100; i++ {
		if s := fn(i, nil); s != 0 {
			t.Fatalf("SingleSite assigned %d", s)
		}
	}
}

// TestGeneratorRejectsInvalidWeights is the table test for the Next
// guard: every way a WeightFn or AssignFn can violate the stream
// invariants must panic at the source, and valid output must not.
func TestGeneratorRejectsInvalidWeights(t *testing.T) {
	constW := func(w float64) WeightFn { return func(int, *xrand.RNG) float64 { return w } }
	constA := func(s int) AssignFn { return func(int, *xrand.RNG) int { return s } }
	cases := []struct {
		name      string
		weights   WeightFn
		assign    AssignFn
		wantPanic bool
	}{
		{"valid", constW(1.5), constA(0), false},
		{"tiny positive", constW(math.SmallestNonzeroFloat64), constA(1), false},
		{"zero weight", constW(0), constA(0), true},
		{"negative weight", constW(-1), constA(0), true},
		{"NaN weight", constW(math.NaN()), constA(0), true},
		{"+Inf weight", constW(math.Inf(1)), constA(0), true},
		{"-Inf weight", constW(math.Inf(-1)), constA(0), true},
		{"site below range", constW(1), constA(-1), true},
		{"site above range", constW(1), constA(2), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewGenerator(3, 2, c.weights, c.assign)
			defer func() {
				if got := recover() != nil; got != c.wantPanic {
					t.Errorf("panic = %v, want %v (recovered: %v)", got, c.wantPanic, recover())
				}
			}()
			for {
				if _, ok := g.Next(xrand.New(1)); !ok {
					break
				}
			}
		})
	}
}
