// Package stream defines the data model of the continuous distributed
// streaming setting of the paper (Section 2.1): a global sequence of
// weighted items, partitioned adversarially across k sites. It also
// provides the workload generators used by the experiments — uniform,
// Zipf and Pareto weight distributions, heavy-head streams that motivate
// sampling without replacement, and the geometric-weight / epoch-based
// hard instances from the lower-bound proofs (Theorems 5 and 7).
package stream

import (
	"fmt"
	"math"

	"wrs/internal/xrand"
)

// Item is a single stream update (e, w): an identifier and a positive
// weight. Identifiers may repeat across the stream; per Section 1, each
// occurrence is sampled as if it were a distinct item, so samplers track
// the global arrival position (Pos) as the identity of an occurrence.
type Item struct {
	ID     uint64
	Weight float64
}

// Update is an item along with its global arrival position and the site
// that observes it.
type Update struct {
	Pos  int // 0-based global arrival index
	Site int
	Item Item
}

// Stream is a finite, materialized stream of updates in global arrival
// order. Large benchmark workloads use Generator instead.
type Stream struct {
	Updates []Update
	K       int // number of sites
}

// TotalWeight returns the sum of all weights in the stream.
func (s *Stream) TotalWeight() float64 {
	var w float64
	for _, u := range s.Updates {
		w += u.Item.Weight
	}
	return w
}

// Validate checks the invariants the algorithms assume: positive weights,
// site indices within [0, K).
func (s *Stream) Validate() error {
	for _, u := range s.Updates {
		if !(u.Item.Weight > 0) || math.IsInf(u.Item.Weight, 0) || math.IsNaN(u.Item.Weight) {
			return fmt.Errorf("stream: update %d has invalid weight %v", u.Pos, u.Item.Weight)
		}
		if u.Site < 0 || u.Site >= s.K {
			return fmt.Errorf("stream: update %d assigned to site %d of %d", u.Pos, u.Site, s.K)
		}
	}
	return nil
}

// Generator produces stream updates one at a time so that workloads larger
// than memory can be streamed through a simulation.
type Generator struct {
	n       int
	k       int
	pos     int
	weights WeightFn
	assign  AssignFn
}

// WeightFn returns the weight of the item at global position pos.
type WeightFn func(pos int, rng *xrand.RNG) float64

// AssignFn returns the site observing the item at global position pos.
type AssignFn func(pos int, rng *xrand.RNG) int

// NewGenerator builds a generator for n updates over k sites.
func NewGenerator(n, k int, weights WeightFn, assign AssignFn) *Generator {
	if n < 0 || k <= 0 {
		panic("stream: NewGenerator requires n >= 0 and k > 0")
	}
	return &Generator{n: n, k: k, weights: weights, assign: assign}
}

// Next returns the next update. ok is false once the stream is exhausted.
// It panics if the WeightFn or AssignFn violates the stream invariants
// (positive finite weight, site within [0, k)): the samplers assume both
// unconditionally, and a NaN weight would silently poison every key
// comparison downstream rather than fail here at the source.
func (g *Generator) Next(rng *xrand.RNG) (u Update, ok bool) {
	if g.pos >= g.n {
		return Update{}, false
	}
	w := g.weights(g.pos, rng)
	if !(w > 0) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("stream: WeightFn returned invalid weight %v at pos %d", w, g.pos))
	}
	site := g.assign(g.pos, rng)
	if site < 0 || site >= g.k {
		panic(fmt.Sprintf("stream: AssignFn returned site %d of %d at pos %d", site, g.k, g.pos))
	}
	u = Update{Pos: g.pos, Site: site, Item: Item{ID: uint64(g.pos), Weight: w}}
	g.pos++
	return u, true
}

// Len returns the total number of updates the generator will produce.
func (g *Generator) Len() int { return g.n }

// K returns the number of sites.
func (g *Generator) K() int { return g.k }

// Reset rewinds the generator to the beginning.
func (g *Generator) Reset() { g.pos = 0 }

// Materialize runs the generator to completion into a Stream.
func (g *Generator) Materialize(rng *xrand.RNG) *Stream {
	s := &Stream{K: g.k, Updates: make([]Update, 0, g.n)}
	g.Reset()
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		s.Updates = append(s.Updates, u)
	}
	return s
}
