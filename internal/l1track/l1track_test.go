package l1track

import (
	"math"
	"testing"
	"testing/quick"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// ---- Counter tracker -------------------------------------------------------

func buildCounter(k int, eps float64) (*netsim.Cluster[CounterMsg], *CounterCoordinator) {
	coord := NewCounterCoordinator(k)
	sites := make([]netsim.Site[CounterMsg], k)
	for i := 0; i < k; i++ {
		sites[i] = NewCounterSite(i, eps)
	}
	return netsim.NewCluster[CounterMsg](coord, sites), coord
}

func TestCounterDeterministicGuarantee(t *testing.T) {
	// Property: at every instant W/(1+eps) <= estimate <= W.
	f := func(seedRaw uint16, kRaw, epsRaw uint8) bool {
		k := int(kRaw%8) + 1
		eps := 0.05 + float64(epsRaw%20)/40 // in [0.05, 0.525)
		cl, coord := buildCounter(k, eps)
		rng := xrand.New(uint64(seedRaw))
		var W float64
		for i := 0; i < 500; i++ {
			w := 1 + 20*rng.Float64()
			W += w
			if err := cl.Feed(rng.Intn(k), stream.Item{ID: uint64(i), Weight: w}); err != nil {
				return false
			}
			est := coord.Estimate()
			if est > W*(1+1e-12) || est < W/(1+eps)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCounterMessageCount(t *testing.T) {
	// ~ k * log_{1+eps}(W_site) messages.
	const k, n = 8, 100000
	eps := 0.1
	cl, _ := buildCounter(k, eps)
	g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
	if err := cl.Run(g, xrand.New(1)); err != nil {
		t.Fatal(err)
	}
	perSite := math.Log(float64(n/k)) / math.Log(1+eps)
	want := float64(k) * perSite
	got := float64(cl.Stats.Upstream)
	if got < want/3 || got > want*3 {
		t.Errorf("counter messages = %v, want ~%v", got, want)
	}
	if cl.Stats.Downstream != 0 {
		t.Errorf("counter tracker broadcast %d messages", cl.Stats.Downstream)
	}
}

func TestCounterRejectsBadWeight(t *testing.T) {
	s := NewCounterSite(0, 0.1)
	if err := s.Observe(stream.Item{Weight: -1}, func(CounterMsg) {}); err == nil {
		t.Error("negative weight accepted")
	}
}

// ---- HYZ tracker ------------------------------------------------------------

func buildHYZ(k int, eps float64, seed uint64) (*netsim.Cluster[HYZMsg], *HYZCoordinator) {
	master := xrand.New(seed)
	coord := NewHYZCoordinator(k, eps)
	sites := make([]netsim.Site[HYZMsg], k)
	for i := 0; i < k; i++ {
		sites[i] = NewHYZSite(i, master.Split())
	}
	return netsim.NewCluster[HYZMsg](coord, sites), coord
}

func TestHYZAccuracy(t *testing.T) {
	// Unit stream, round-robin: estimate within ~eps at the end. The
	// estimator's 3-sigma radius is eps*W; allow 1.5x for drift bias.
	const k, n = 16, 200000
	eps := 0.1
	bad := 0
	const trials = 10
	for tr := 0; tr < trials; tr++ {
		cl, coord := buildHYZ(k, eps, uint64(100+tr))
		g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
		if err := cl.Run(g, xrand.New(uint64(7+tr))); err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(coord.Estimate()-n) / n
		if rel > 1.5*eps {
			bad++
			t.Logf("trial %d: relative error %v", tr, rel)
		}
	}
	if bad > 1 {
		t.Errorf("%d/%d trials exceeded 1.5*eps relative error", bad, trials)
	}
}

func TestHYZMessageShape(t *testing.T) {
	// The defining difference between the rows of the Section 5 table:
	// HYZ messages grow ~ sqrt(k)/eps * logW while the counter tracker
	// grows ~ k/eps * logW. Verify the scaling in k (16x more sites must
	// cost the counter tracker ~16x and HYZ only ~4x, modulo the additive
	// k*logW broadcast term), plus an absolute envelope.
	const n = 200000
	eps := 0.05
	runH := func(k int) int64 {
		cl, _ := buildHYZ(k, eps, uint64(3+k))
		g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
		if err := cl.Run(g, xrand.New(uint64(11+k))); err != nil {
			t.Fatal(err)
		}
		return cl.Stats.Total()
	}
	runC := func(k int) int64 {
		cl, _ := buildCounter(k, eps)
		g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
		if err := cl.Run(g, xrand.New(uint64(12+k))); err != nil {
			t.Fatal(err)
		}
		return cl.Stats.Total()
	}
	h4, h64 := runH(4), runH(64)
	c4, c64 := runC(4), runC(64)
	hRatio := float64(h64) / float64(h4)
	cRatio := float64(c64) / float64(c4)
	t.Logf("k 4->64: HYZ %d->%d (%.1fx), counter %d->%d (%.1fx)", h4, h64, hRatio, c4, c64, cRatio)
	if hRatio > 9 {
		t.Errorf("HYZ grew %vx in k; want ~sqrt(16)=4x (allowing <9x)", hRatio)
	}
	if cRatio < 10 {
		t.Errorf("counter tracker grew %vx in k; want ~16x (at least 10x)", cRatio)
	}
	envelope := 60 * (64 + math.Sqrt(64)/eps) * math.Log2(float64(n))
	if float64(h64) > envelope {
		t.Errorf("HYZ messages %d exceed envelope %v", h64, envelope)
	}
}

// TestHYZIdleSiteDriftBias pins the documented limitation (DESIGN.md
// §6): the drift correction k*(1-p)/p assumes every site keeps
// receiving traffic. When sites go permanently idle mid-run, their real
// unreported drift stays frozen at the (smaller) level of the moment
// they went idle, while the correction keeps growing as p drops — the
// estimate biases HIGH, by up to (1-p)/p per idle site. This test pins
// the bias's direction and magnitude so a future fix has a measurable
// baseline: on this stream (15 of 16 sites idle for the second half)
// the mean signed relative error sits around +6%, clearly positive and
// well below the k*(1-p)/p worst case.
func TestHYZIdleSiteDriftBias(t *testing.T) {
	const k, half = 16, 100000
	eps := 0.1
	const trials = 20
	var meanRel float64
	var worstCase float64
	for tr := 0; tr < trials; tr++ {
		cl, coord := buildHYZ(k, eps, uint64(400+tr))
		// Phase 1: unit traffic round-robin over all k sites.
		for i := 0; i < half; i++ {
			if err := cl.Feed(i%k, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
		// Phase 2: sites 1..k-1 go permanently idle; site 0 carries all
		// remaining traffic.
		for i := 0; i < half; i++ {
			if err := cl.Feed(0, stream.Item{ID: uint64(half + i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
		W := float64(2 * half)
		rel := (coord.Estimate() - W) / W
		meanRel += rel / trials
		wc := float64(k-1) * (1 - coord.P()) / coord.P() / W
		if wc > worstCase {
			worstCase = wc
		}
	}
	t.Logf("idle-site stream: mean signed relative error %+.3f (documented worst case +%.3f)", meanRel, worstCase)
	// The bias is real and positive: well beyond the estimator's noise
	// floor (sd ~ eps/3 per trial, ~eps/(3*sqrt(trials)) for the mean).
	if meanRel < eps/5 {
		t.Errorf("idle-site bias %+.4f below the pinned baseline %+.4f — if the drift correction was fixed, update this regression test and DESIGN.md §6", meanRel, eps/5)
	}
	// And bounded by the documented worst case (plus estimator noise).
	if meanRel > worstCase+eps {
		t.Errorf("idle-site bias %+.4f exceeds the documented bound %+.4f", meanRel, worstCase+eps)
	}
}

func TestHYZRejectsNonIntegerWeights(t *testing.T) {
	s := NewHYZSite(0, xrand.New(1))
	if err := s.Observe(stream.Item{Weight: 0.5}, func(HYZMsg) {}); err == nil {
		t.Error("fractional weight accepted")
	}
}

// ---- Duplication tracker (the paper's algorithm) ---------------------------

func buildDup(k int, p DupParams, seed uint64) (*netsim.Cluster[core.Message], *DupCoordinator, error) {
	coord, sites, err := NewDupTracker(k, p, xrand.New(seed))
	if err != nil {
		return nil, nil, err
	}
	ns := make([]netsim.Site[core.Message], k)
	for i, s := range sites {
		ns[i] = s
	}
	return netsim.NewCluster[core.Message](coord, ns), coord, nil
}

func TestDupParams(t *testing.T) {
	p := DupParams{Eps: 0.1, Delta: 0.1}
	if p.S() != int(math.Ceil(10*math.Log(10)/0.01)) {
		t.Errorf("S = %d", p.S())
	}
	if p.L() != int(math.Ceil(float64(p.S())/0.2)) {
		t.Errorf("L = %d", p.L())
	}
	if err := (DupParams{Eps: 0.6, Delta: 0.1}).Validate(); err == nil {
		t.Error("eps = 0.6 accepted")
	}
	if _, _, err := NewDupTracker(2, DupParams{Eps: 0, Delta: 0.1}, xrand.New(1)); err == nil {
		t.Error("invalid params accepted by NewDupTracker")
	}
}

func TestDupTrackerAccuracy(t *testing.T) {
	// eps = 0.15 with a reduced constant factor (SFactor 4) keeps the
	// test fast; the estimator radius then is ~eps at 2-3 sigma. Check
	// accuracy at several checkpoints and at the end.
	p := DupParams{Eps: 0.15, Delta: 0.2, SFactor: 4}
	const k, n = 4, 3000
	bad, checks := 0, 0
	for tr := 0; tr < 6; tr++ {
		cl, coord, err := buildDup(k, p, uint64(500+tr))
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(900 + tr))
		var W float64
		for i := 0; i < n; i++ {
			w := 1 + math.Floor(9*rng.Float64())
			W += w
			if err := cl.Feed(i%k, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
			if i%500 == 499 || i == n-1 {
				checks++
				rel := math.Abs(coord.Estimate()-W) / W
				if rel > p.Eps {
					bad++
				}
			}
		}
	}
	// delta = 0.2 per fixed time step; allow up to ~35% of checkpoints to
	// miss before failing (observed rate is far lower).
	if float64(bad) > 0.35*float64(checks) {
		t.Errorf("%d/%d checkpoints exceeded eps relative error", bad, checks)
	}
}

func TestDupTrackerExactPrefix(t *testing.T) {
	// Until the first positive threshold the estimate must be *exact*.
	p := DupParams{Eps: 0.2, Delta: 0.3, SFactor: 3}
	cl, coord, err := buildDup(2, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	var W float64
	for i := 0; i < 10; i++ {
		w := float64(1 + i)
		W += w
		if err := cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
		if coord.Core().CurrentThreshold() == 0 {
			if got := coord.Estimate(); math.Abs(got-W) > 1e-6*W {
				t.Fatalf("exact-prefix estimate = %v, want %v", got, W)
			}
		}
	}
}

func TestDupTrackerMessageSublinearity(t *testing.T) {
	// Messages must be sublinear in n (and enormously sublinear in the
	// duplicated stream n*l).
	p := DupParams{Eps: 0.15, Delta: 0.2, SFactor: 4}
	const k, n = 4, 20000
	cl, _, err := buildDup(k, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
	if err := cl.Run(g, xrand.New(8)); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Total() > int64(n) {
		t.Errorf("dup tracker sent %d messages on %d updates", cl.Stats.Total(), n)
	}
	t.Logf("dup tracker: %d messages for %d updates (l = %d copies each)",
		cl.Stats.Total(), n, p.L())
}

func TestDupParamsAllTimes(t *testing.T) {
	p := DupParams{Eps: 0.1, Delta: 0.1}
	at := p.AllTimes(1e6)
	if at.Delta >= p.Delta {
		t.Errorf("AllTimes did not reduce delta: %v -> %v", p.Delta, at.Delta)
	}
	// ~log(1e6)/0.1 = 138 steps.
	wantSteps := math.Log(1e6) / 0.1
	if math.Abs(at.Delta-p.Delta/wantSteps) > 1e-12 {
		t.Errorf("AllTimes delta = %v, want %v", at.Delta, p.Delta/wantSteps)
	}
	if at.S() <= p.S() {
		t.Errorf("AllTimes should enlarge the sample: %d vs %d", at.S(), p.S())
	}
	// Degenerate input does not blow up.
	tiny := p.AllTimes(0)
	if !(tiny.Delta > 0) {
		t.Errorf("AllTimes(0) delta = %v", tiny.Delta)
	}
}
