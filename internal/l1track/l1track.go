// Package l1track implements Section 5 of the paper: distributed L1
// (count) tracking, where the coordinator continuously maintains a
// (1 ± eps)-approximation of the total weight observed across all sites.
//
// Three trackers are provided, matching the rows of the paper's
// comparison table:
//
//   - DupTracker — the paper's algorithm (Theorem 6 / Corollary 3):
//     duplicate each update l = s/(2*eps) times into the weighted SWOR of
//     package core with s = Theta(log(1/delta)/eps^2); the s-th largest
//     key u concentrates around l*W/s, so s*u/l tracks W. Expected
//     messages O(k*log(eps*W)/log(k) + eps^-2*log(eps*W)*log(1/delta)).
//   - CounterTracker — the deterministic folklore protocol ([14]+folklore
//     row): every site reports its local total whenever it grows by a
//     (1+eps) factor. O((k/eps)*log W) messages, deterministic guarantee.
//   - HYZTracker — the Huang–Yi–Zhang-style randomized protocol ([23]
//     row): sites ping the coordinator with their exact local count with
//     a probability tuned to ~sqrt(k)/(eps*W); the residual drift per
//     site is geometric with known mean, giving O((k + sqrt(k)/eps)*logW)
//     messages. (The bias correction assumes all sites keep receiving
//     traffic; see HYZCoordinator.)
package l1track

import (
	"fmt"
	"math"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// ---- The paper's duplication tracker (Theorem 6) -------------------------

// DupParams selects the accuracy of the duplication tracker.
type DupParams struct {
	Eps   float64
	Delta float64
	// SFactor scales the sample size s = SFactor*ln(1/delta)/eps^2.
	// The proof of Theorem 6 uses 10; smaller factors trade constants
	// for speed and are exercised by the experiments. 0 means 10.
	SFactor float64
}

// Validate reports whether the parameters are usable.
func (p DupParams) Validate() error {
	if !(p.Eps > 0 && p.Eps < 0.5) || !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("l1track: need eps in (0,0.5), delta in (0,1), got %v, %v", p.Eps, p.Delta)
	}
	return nil
}

func (p DupParams) sFactor() float64 {
	if p.SFactor <= 0 {
		return 10
	}
	return p.SFactor
}

// S returns the SWOR sample size s.
func (p DupParams) S() int {
	return int(math.Ceil(p.sFactor() * math.Log(1/p.Delta) / (p.Eps * p.Eps)))
}

// L returns the duplication factor l = ceil(s/(2*eps)).
func (p DupParams) L() int {
	return int(math.Ceil(float64(p.S()) / (2 * p.Eps)))
}

// AllTimes returns parameters whose per-step failure probability is
// reduced so that, by the union bound of Corollary 3, the estimate is
// within (1 +/- eps) at *every* one of the ~log(W)/eps steps where the
// total weight grows by a (1+eps) factor, with overall probability
// 1-delta. expectedW is an upper bound on the final total weight.
func (p DupParams) AllTimes(expectedW float64) DupParams {
	steps := math.Log(math.Max(expectedW, 2)) / p.Eps
	out := p
	out.Delta = p.Delta / math.Max(steps, 1)
	return out
}

// DupSite duplicates each local arrival L times into the core sampler.
type DupSite struct {
	site *core.Site
	ell  int
}

// Observe feeds one arrival (as l internal copies).
func (s *DupSite) Observe(it stream.Item, send func(core.Message)) error {
	return s.site.ObserveRepeated(it, s.ell, send)
}

// HandleBroadcast forwards announcements to the inner sampler site.
func (s *DupSite) HandleBroadcast(m core.Message) { s.site.HandleBroadcast(m) }

// Core returns the wrapped sampler site (diagnostics).
func (s *DupSite) Core() *core.Site { return s.site }

// DupCoordinator maintains the L1 estimate from the sampler state.
type DupCoordinator struct {
	coord *core.Coordinator
	p     DupParams
	ell   int

	exactDup float64 // sum of received copy weights while no filtering was active
	estMode  bool    // true once the epoch threshold went positive
}

// HandleMessage folds a sampler message and updates the exact prefix
// accumulator (complete until the first positive threshold broadcast; see
// Estimate).
func (c *DupCoordinator) HandleMessage(m core.Message, bcast func(core.Message)) {
	if !c.estMode && (m.Kind == core.MsgEarly || m.Kind == core.MsgRegular) {
		c.exactDup += m.Item.Weight
	}
	c.coord.HandleMessage(m, bcast)
	if !c.estMode && c.coord.CurrentThreshold() > 0 {
		c.estMode = true
	}
}

// Estimate returns the current L1 estimate. While the epoch threshold is
// zero every duplicated copy reaches the coordinator, so the estimate is
// exact; afterwards it is the Theorem 6 estimator s*u/l with u the s-th
// largest key.
func (c *DupCoordinator) Estimate() float64 {
	if !c.estMode {
		return c.exactDup / float64(c.ell)
	}
	u, ok := c.coord.SthKey()
	if !ok {
		return c.exactDup / float64(c.ell)
	}
	return float64(c.p.S()) * u / float64(c.ell)
}

// Core returns the wrapped sampler coordinator (diagnostics).
func (c *DupCoordinator) Core() *core.Coordinator { return c.coord }

// DropBelow reports the key bound below which a transport may discard
// MsgRegular messages before they reach HandleMessage. While the exact
// prefix accumulator is live (threshold still zero) every message
// carries weight the estimate needs, so nothing may be dropped;
// afterwards the inner sampler's bound applies unchanged.
func (c *DupCoordinator) DropBelow() float64 {
	if !c.estMode {
		return 0
	}
	return c.coord.DropBelow()
}

// EstMode reports whether the tracker has left the exact-prefix phase:
// true once the first positive epoch threshold was observed, after which
// Estimate switches from the exact accumulator to the Theorem 6
// estimator. Exported for the chaos oracle, which mirrors the exact
// accumulator delivery by delivery and must freeze its copy at the same
// boundary the wrapper does.
func (c *DupCoordinator) EstMode() bool { return c.estMode }

// Ell returns the duplication factor l (each logical update is fed as l
// copies; every estimate divides by it).
func (c *DupCoordinator) Ell() int { return c.ell }

// NewSite builds a replacement duplication site for id, wired to this
// coordinator's configuration and duplication factor — the chaos
// engine's site-join path, where a fresh machine takes over a crashed
// site's identity (the inner sampler site then receives the control
// snapshot replay exactly like a plain sampler joiner).
func (c *DupCoordinator) NewSite(id int, rng *xrand.RNG) *DupSite {
	return &DupSite{site: core.NewSite(id, c.coord.Config(), rng), ell: c.ell}
}

// DupState is a self-contained checkpoint of the duplication tracker's
// coordinator side: the inner sampler checkpoint plus the exact-prefix
// accumulator and the phase flag. Both extra fields are load-bearing for
// exactness — a restart that restored the sampler but reset the
// accumulator would change every pre-threshold estimate.
type DupState struct {
	Inner    *core.CoordinatorState
	ExactDup float64
	EstMode  bool
}

// ExportState captures the coordinator as a DupState sharing nothing
// with the live machine.
func (c *DupCoordinator) ExportState() *DupState {
	return &DupState{
		Inner:    c.coord.ExportState(),
		ExactDup: c.exactDup,
		EstMode:  c.estMode,
	}
}

// RestoreState overwrites the coordinator with a checkpoint in place,
// keeping outstanding pointers (including to the inner sampler
// coordinator) valid. The checkpoint's config must match.
func (c *DupCoordinator) RestoreState(st *DupState) error {
	if err := c.coord.RestoreState(st.Inner); err != nil {
		return err
	}
	c.exactDup = st.ExactDup
	c.estMode = st.EstMode
	return nil
}

// NewDupTracker builds the Theorem 6 construction over k sites.
func NewDupTracker(k int, p DupParams, master *xrand.RNG) (*DupCoordinator, []*DupSite, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := core.Config{K: k, S: p.S()}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	ell := p.L()
	coord := &DupCoordinator{coord: core.NewCoordinator(cfg, master.Split()), p: p, ell: ell}
	sites := make([]*DupSite, k)
	for i := 0; i < k; i++ {
		sites[i] = &DupSite{site: core.NewSite(i, cfg, master.Split()), ell: ell}
	}
	return coord, sites, nil
}

// ---- Deterministic counter tracker ([14] + folklore) ---------------------

// CounterMsg reports a site's exact local total.
type CounterMsg struct {
	Site  int
	Total float64
}

// Words returns the message size in machine words.
func (CounterMsg) Words() int { return 3 }

// CounterSite reports whenever its local weight grows by (1+eps).
type CounterSite struct {
	id           int
	eps          float64
	localW       float64
	lastReported float64
}

// NewCounterSite returns a deterministic reporting site.
func NewCounterSite(id int, eps float64) *CounterSite {
	if !(eps > 0) {
		panic("l1track: CounterSite requires eps > 0")
	}
	return &CounterSite{id: id, eps: eps}
}

// Observe accumulates weight and reports on (1+eps) growth.
func (s *CounterSite) Observe(it stream.Item, send func(CounterMsg)) error {
	if !(it.Weight > 0) {
		return fmt.Errorf("l1track: weight must be positive, got %v", it.Weight)
	}
	s.localW += it.Weight
	if s.lastReported == 0 || s.localW >= s.lastReported*(1+s.eps) {
		s.lastReported = s.localW
		send(CounterMsg{Site: s.id, Total: s.localW})
	}
	return nil
}

// HandleBroadcast is a no-op (the protocol is one-directional).
func (s *CounterSite) HandleBroadcast(CounterMsg) {}

// CounterCoordinator sums the last reports.
type CounterCoordinator struct {
	reported []float64
	est      float64
}

// NewCounterCoordinator returns a coordinator for k sites.
func NewCounterCoordinator(k int) *CounterCoordinator {
	return &CounterCoordinator{reported: make([]float64, k)}
}

// HandleMessage folds one site report.
func (c *CounterCoordinator) HandleMessage(m CounterMsg, _ func(CounterMsg)) {
	c.est += m.Total - c.reported[m.Site]
	c.reported[m.Site] = m.Total
}

// Estimate returns the deterministic estimate: W/(1+eps) < Estimate <= W.
func (c *CounterCoordinator) Estimate() float64 { return c.est }

// ---- Randomized HYZ-style tracker ([23]) ----------------------------------

// HYZMsgKind discriminates HYZ messages.
type HYZMsgKind uint8

const (
	// HYZReport carries a site's exact local count (site -> coordinator).
	HYZReport HYZMsgKind = iota
	// HYZProb announces a new ping probability (coordinator -> sites).
	HYZProb
)

// HYZMsg is a protocol message.
type HYZMsg struct {
	Kind  HYZMsgKind
	Site  int
	Total float64
	P     float64
}

// Words returns the message size in machine words.
func (HYZMsg) Words() int { return 3 }

// HYZSite pings the coordinator with probability ~p per unit of weight,
// carrying its exact local count. Weights must be positive integers (the
// protocol is count tracking; experiment E9 uses unit streams).
type HYZSite struct {
	id     int
	rng    *xrand.RNG
	p      float64
	localW float64
}

// NewHYZSite returns a randomized reporting site.
func NewHYZSite(id int, rng *xrand.RNG) *HYZSite {
	return &HYZSite{id: id, rng: rng, p: 1}
}

// Observe accumulates weight and pings with probability 1-(1-p)^w.
func (s *HYZSite) Observe(it stream.Item, send func(HYZMsg)) error {
	w := it.Weight
	if !(w > 0) || w != math.Floor(w) {
		return fmt.Errorf("l1track: HYZ tracking requires positive integer weights, got %v", w)
	}
	s.localW += w
	pSend := 1.0
	if s.p < 1 {
		pSend = -math.Expm1(w * math.Log1p(-s.p))
	}
	if s.rng.Float64() < pSend {
		send(HYZMsg{Kind: HYZReport, Site: s.id, Total: s.localW})
	}
	return nil
}

// HandleBroadcast lowers the ping probability.
func (s *HYZSite) HandleBroadcast(m HYZMsg) {
	if m.Kind == HYZProb && m.P < s.p {
		s.p = m.P
	}
}

// HYZCoordinator estimates W as the sum of last reports plus the expected
// unreported drift k*(1-p)/p.
//
// Limitation (documented in DESIGN.md): the geometric drift correction is
// exact only for sites that keep receiving traffic; on streams where
// sites go permanently idle mid-run the estimate biases high by up to
// (1-p)/p per idle site. The original [23] analysis places the same
// per-site drift argument inside a more careful round structure; for the
// message-complexity experiments (E9) this simplification is immaterial.
type HYZCoordinator struct {
	k    int
	eps  float64
	last []float64
	sum  float64
	p    float64

	Broadcasts int64
	Reports    int64
}

// NewHYZCoordinator returns a coordinator for k sites at accuracy eps.
func NewHYZCoordinator(k int, eps float64) *HYZCoordinator {
	if !(eps > 0 && eps < 1) {
		panic("l1track: HYZCoordinator requires eps in (0,1)")
	}
	return &HYZCoordinator{k: k, eps: eps, last: make([]float64, k), p: 1}
}

// HandleMessage folds one ping and retunes the ping probability when the
// estimate has doubled.
func (c *HYZCoordinator) HandleMessage(m HYZMsg, bcast func(HYZMsg)) {
	if m.Kind != HYZReport {
		return
	}
	c.Reports++
	c.sum += m.Total - c.last[m.Site]
	c.last[m.Site] = m.Total
	// Target p = 3*sqrt(k)/(eps*West): sd of the estimate is
	// ~sqrt(k)/p = eps*West/3.
	target := 3 * math.Sqrt(float64(c.k)) / (c.eps * math.Max(c.sum, 1))
	if target > 1 {
		target = 1
	}
	// Lazy re-broadcast: only when p should halve (the estimate roughly
	// doubled), keeping k messages per doubling.
	if target < c.p/2 {
		c.p = target
		c.Broadcasts++
		bcast(HYZMsg{Kind: HYZProb, P: c.p})
	}
}

// Estimate returns the bias-corrected estimate.
func (c *HYZCoordinator) Estimate() float64 {
	if c.sum == 0 {
		return 0
	}
	return c.sum + float64(c.k)*(1-c.p)/c.p
}

// P returns the current ping probability.
func (c *HYZCoordinator) P() float64 { return c.p }
