package bench

import (
	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "A4",
		Title: "Ablation: partitioner sensitivity (adversarial interleavings)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "A4",
				Title:      "Messages across site assignments (Section 2.1: the adversary picks the interleaving)",
				PaperClaim: "The Theorem 3 bound is worst-case over interleavings: message counts must stay in the same regime for round-robin, random, contiguous and single-site partitions.",
				Headers:    []string{"partition", "messages", "vs round-robin"},
			}
			n := 100000
			if quick {
				n = 30000
			}
			cfg := core.Config{K: 16, S: 8}
			parts := []struct {
				name string
				af   stream.AssignFn
			}{
				{"round-robin", stream.RoundRobin(cfg.K)},
				{"random", stream.RandomSites(cfg.K)},
				{"contiguous", stream.Contiguous(cfg.K, n)},
				{"single-site", stream.SingleSite()},
			}
			base := 0.0
			for _, p := range parts {
				msgs := avgCoreMessages(cfg, n, 3, stream.UniformWeights(10), p.af, 4001)
				if p.name == "round-robin" {
					base = msgs
				}
				t.AddRow(p.name, f1(msgs), f2(msgs/base))
			}
			return t
		},
	})
	register(Experiment{
		ID:    "E14",
		Title: "Extension: distributed sliding-window weighted SWOR (Section 6 open problem)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E14",
				Title:      "Exact window sampling over k sites: messages vs send-everything",
				PaperClaim: "Posed as future work; no bound is claimed. This implementation is exact and empirically sublinear; threshold falls (expiring sample members) are the structural obstacle a message-optimal protocol must tame.",
				Headers:    []string{"workload", "width", "messages", "msgs/update", "threshold falls", "max site buffer"},
			}
			n := 100000
			if quick {
				n = 30000
			}
			const k, s = 4, 8
			for _, c := range []struct {
				name  string
				width int
				wf    stream.WeightFn
			}{
				{"uniform", 2000, stream.UniformWeights(10)},
				{"pareto-1.2", 2000, stream.ParetoWeights(1.2)},
				{"heavy-head", 500, stream.HeavyHeadWeights(20, 1e9)},
			} {
				cl, err := window.NewSlideCluster(k, s, c.width, xrand.New(1401))
				if err != nil {
					panic(err)
				}
				rng := xrand.New(1402)
				maxBuf := 0
				for i := 0; i < n; i++ {
					it := stream.Item{ID: uint64(i), Weight: c.wf(i, rng)}
					if err := cl.Feed(i%k, it); err != nil {
						panic(err)
					}
					for _, site := range cl.Sites {
						if b := site.Buffered(); b > maxBuf {
							maxBuf = b
						}
					}
				}
				total := cl.Upstream + cl.Downstream
				t.AddRow(c.name, d(int64(c.width)), d(total),
					f3(float64(total)/float64(n)), d(cl.Coord.Falls), d(int64(maxBuf)))
			}
			return t
		},
	})
}
