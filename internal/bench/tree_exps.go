package bench

import (
	"fmt"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/relay"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// runTreeCore drives one full-protocol run over a hierarchical relay
// tree (netsim deterministic runtime, relay filter machines with the
// top-s union merge on) and returns the cluster for inspection. Depth 0
// is the flat baseline.
func runTreeCore(cfg core.Config, fanout, depth, n int, wf stream.WeightFn, seed uint64) *netsim.TreeCluster[core.Message] {
	master := xrand.New(seed)
	coord := core.NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[core.Message], cfg.K)
	for i := 0; i < cfg.K; i++ {
		sites[i] = core.NewSite(i, cfg, master.Split())
	}
	cl, err := netsim.NewTreeCluster[core.Message](coord, sites, fanout, depth,
		func(int, int) netsim.TreeRelay[core.Message] { return relay.NewMachine(cfg.S, true) })
	if err != nil {
		panic(err)
	}
	g := stream.NewGenerator(n, cfg.K, wf, stream.RoundRobin(cfg.K))
	g.Reset()
	rng := xrand.New(seed ^ 0xD1B54A32D192ED03)
	for {
		u, ok := g.Next(rng)
		if !ok {
			return cl
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			panic(err)
		}
	}
}

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Hierarchical relay fabric: root fan-in and up-tree traffic at k=1000",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:    "E17",
				Title: "Tree vs flat at k=1000 (s=16, pareto-1.3 weights, round-robin)",
				PaperClaim: "The paper's coordinator terminates k connections; a relay tree built from the " +
					"same monotone control plane cuts root fan-in to min(fanout, k) while relays drop only " +
					"messages the coordinator would discard, so the site edge — the Theorem 3 quantity — is " +
					"bit-identical to flat and the root edge can only shrink.",
				Headers: []string{"topology", "root conns", "site msgs", "root msgs", "root/site",
					"up-tree msgs", "msgs/update", "tier filtered"},
			}
			n := 200000
			if quick {
				n = 40000
			}
			cfg := core.Config{K: 1000, S: 16}
			wf := stream.ParetoWeights(1.3)
			var flatSite int64
			for _, shape := range []struct {
				name          string
				fanout, depth int
			}{
				{"flat", 0, 0},
				{"fanout=2,depth=2", 2, 2},
				{"fanout=4,depth=2", 4, 2},
				{"fanout=32,depth=2", 32, 2},
			} {
				cl := runTreeCore(cfg, shape.fanout, shape.depth, n, wf, 1701)
				site := cl.Stats.Upstream
				if shape.depth == 0 {
					flatSite = site
				} else if site != flatSite {
					panic(fmt.Sprintf("tree %s site edge %d != flat %d: relays altered coordinator state",
						shape.name, site, flatSite))
				}
				upTree := site // the site->leaf (or site->root) edge
				filtered := ""
				for tier, st := range cl.TierStats() {
					upTree += st.Forwarded
					if tier > 0 {
						filtered += "+"
					}
					filtered += d(st.Filtered())
				}
				if filtered == "" {
					filtered = "-"
				}
				t.AddRow(shape.name, d(int64(cl.RootFanIn())), d(site), d(cl.RootUpstream()),
					f3(float64(cl.RootUpstream())/float64(site)),
					d(upTree), f3(float64(upTree)/float64(n)), filtered)
			}
			t.Notes = append(t.Notes,
				"site msgs is identical across topologies by construction (checked at run time): relays only drop messages the coordinator was going to drop, so coordinator state, broadcasts, and site decisions are bit-identical to flat.",
				"up-tree msgs counts every hop on every up edge (site->leaf plus each relay tier's forwards); with depth d it is at most (d+1)x the flat count and relay filtering keeps it well below that.",
				"tier filtered lists drops per tier, root's children first.")
			return t
		},
	})
}
