package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E17", "A1", "A2", "A3", "A4"}
	for _, id := range want {
		if Find(id) == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if Find("e1") == nil {
		t.Error("Find not case-insensitive")
	}
	if Find("nope") != nil {
		t.Error("Find returned a bogus experiment")
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID: "X", Title: "demo", PaperClaim: "claim",
		Headers: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	table.AddRow("1", "2")
	for _, format := range []string{"text", "md", "csv"} {
		var buf bytes.Buffer
		table.Render(&buf, format)
		out := buf.String()
		for _, want := range []string{"demo", "1", "2"} {
			if !strings.Contains(out, want) {
				t.Errorf("format %s missing %q:\n%s", format, want, out)
			}
		}
	}
	var md bytes.Buffer
	table.Render(&md, "md")
	if !strings.Contains(md.String(), "| a | b |") {
		t.Errorf("markdown header broken:\n%s", md.String())
	}
}

// TestAllExperimentsQuick executes every experiment in quick mode: the
// suite is the reproduction harness, so it must at minimum run to
// completion and produce plausible tables.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(true)
			if table.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			if table.PaperClaim == "" {
				t.Error("missing paper claim")
			}
			for _, r := range table.Rows {
				if len(r) != len(table.Headers) {
					t.Errorf("row width %d != header width %d", len(r), len(table.Headers))
				}
			}
		})
	}
}
