package bench

import (
	"math"

	"wrs/internal/core"
	"wrs/internal/heavyhitter"
	"wrs/internal/l1track"
	"wrs/internal/netsim"
	"wrs/internal/stats"
	"wrs/internal/stream"
	"wrs/internal/swr"
	"wrs/internal/xrand"
)

// plantResidualStream builds the skewed instance used throughout Section
// 4 experiments: giants (plain HHs), mediums (residual HHs only — their
// weight scales with the light tail so that medium >= eps * residual
// tail), lights.
func plantResidualStream(giants, mediums, lights, k int) (*stream.Stream, []float64) {
	mediumW := math.Ceil(0.13 * float64(lights)) // ~1.3x the eps=0.1 residual bar
	var weights []float64
	for i := 0; i < giants; i++ {
		weights = append(weights, 1e8+float64(i))
	}
	for i := 0; i < mediums; i++ {
		weights = append(weights, mediumW+float64(i))
	}
	for i := 0; i < lights; i++ {
		weights = append(weights, 1)
	}
	s := &stream.Stream{K: k}
	for i, w := range weights {
		s.Updates = append(s.Updates, stream.Update{Pos: i, Site: i % k,
			Item: stream.Item{ID: uint64(i), Weight: w}})
	}
	return s, weights
}

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Residual heavy hitters: SWOR tracker vs SWR baseline (Theorem 4)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E7",
				Title:      "Recall on a skewed stream (5 giants, 6 mediums, unit tail), eps=0.1",
				PaperClaim: "SWOR of size O(log(1/(eps·delta))/eps) recovers every residual eps-HH; the same budget of with-replacement samples only ever sees the giants.",
				Headers:    []string{"tracker", "plain-HH recall", "residual-HH recall", "messages"},
			}
			const k = 8
			p := heavyhitter.Params{Eps: 0.1, Delta: 0.05}
			lights := 30000
			trials := 10
			if quick {
				lights = 8000
				trials = 5
			}
			var sworPlain, sworRes, swrPlain, swrRes, sworMsgs, swrMsgs float64
			for tr := 0; tr < trials; tr++ {
				st, weights := plantResidualStream(5, 6, lights, k)
				plainWant := heavyhitter.ExactHH(weights, p.Eps)
				resWant := heavyhitter.ExactResidualHH(weights, p.Eps)

				tw, err := heavyhitter.NewTracker(k, p, xrand.New(uint64(1000+tr)))
				if err != nil {
					panic(err)
				}
				sites := make([]netsim.Site[core.Message], k)
				for i, s := range tw.Sites {
					sites[i] = s
				}
				cl := netsim.NewCluster[core.Message](tw.Coord, sites)
				if err := cl.RunStream(st); err != nil {
					panic(err)
				}
				got := tw.Query()
				sworPlain += heavyhitter.Recall(got, plainWant)
				sworRes += heavyhitter.Recall(got, resWant)
				sworMsgs += float64(cl.Stats.Total())

				tb, err := heavyhitter.NewSWRTracker(k, p, xrand.New(uint64(2000+tr)))
				if err != nil {
					panic(err)
				}
				sSites := make([]netsim.Site[swr.Message], k)
				for i, s := range tb.Sites {
					sSites[i] = s
				}
				cl2 := netsim.NewCluster[swr.Message](tb.Coord, sSites)
				if err := cl2.RunStream(st); err != nil {
					panic(err)
				}
				got2 := tb.Query()
				swrPlain += heavyhitter.Recall(got2, plainWant)
				swrRes += heavyhitter.Recall(got2, resWant)
				swrMsgs += float64(cl2.Stats.Total())
			}
			tr := float64(trials)
			t.AddRow("weighted SWOR (ours)", f3(sworPlain/tr), f3(sworRes/tr), f1(sworMsgs/tr))
			t.AddRow("weighted SWR (baseline)", f3(swrPlain/tr), f3(swrRes/tr), f1(swrMsgs/tr))
			return t
		},
	})

	register(Experiment{
		ID:    "E8",
		Title: "Theorem 5 lower-bound instance for heavy-hitter tracking",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E8",
				Title:      "Geometric stream w_i = eps·(1+eps)^i: every arrival is an eps/2-HH",
				PaperClaim: "Any correct tracker must send Omega(eps^-1·log(eps·W)) messages on this stream (the candidate set must change at nearly every step).",
				Headers:    []string{"eps", "n", "messages", "lower bound eps^-1·ln(eps·W)", "ratio"},
			}
			const k = 4
			for _, eps := range []float64{0.2, 0.1} {
				n := int(math.Min(10/eps/0.2, 700)) // keep (1+eps)^n within float range
				wf := stream.GeometricWeights(eps)
				var W float64
				for i := 0; i < n; i++ {
					W += wf(i, nil)
				}
				p := heavyhitter.Params{Eps: eps, Delta: 0.1}
				tw, err := heavyhitter.NewTracker(k, p, xrand.New(42))
				if err != nil {
					panic(err)
				}
				sites := make([]netsim.Site[core.Message], k)
				for i, s := range tw.Sites {
					sites[i] = s
				}
				cl := netsim.NewCluster[core.Message](tw.Coord, sites)
				g := stream.NewGenerator(n, k, wf, stream.RoundRobin(k))
				if err := cl.Run(g, xrand.New(43)); err != nil {
					panic(err)
				}
				bound := math.Log(eps*W) / eps
				t.AddRow(f2(eps), d(int64(n)), d(cl.Stats.Total()), f1(bound),
					f2(float64(cl.Stats.Total())/bound))
			}
			// Second construction (the Omega(k·logW/log k) part): eta
			// epochs; in epoch i each site receives one item of weight
			// k^i, so the first arrival of each epoch is a 1/2-HH and
			// every site must communicate (it cannot know it was not
			// first).
			for _, k := range []int{8, 16} {
				eta := 10
				wf := func(pos int, _ *xrand.RNG) float64 {
					return math.Pow(float64(k), float64(pos/k))
				}
				n := k * eta
				p := heavyhitter.Params{Eps: 0.25, Delta: 0.1}
				tw, err := heavyhitter.NewTracker(k, p, xrand.New(44))
				if err != nil {
					panic(err)
				}
				sites := make([]netsim.Site[core.Message], k)
				for i, s := range tw.Sites {
					sites[i] = s
				}
				cl := netsim.NewCluster[core.Message](tw.Coord, sites)
				g := stream.NewGenerator(n, k, wf, stream.RoundRobin(k))
				if err := cl.Run(g, xrand.New(45)); err != nil {
					panic(err)
				}
				bound := float64(k) * float64(eta) // = k·logW/log k
				t.AddRow("k="+d(int64(k)), d(int64(n)), d(cl.Stats.Total()), f1(bound),
					f2(float64(cl.Stats.Total())/bound))
			}
			t.Notes = append(t.Notes,
				"ratio >= 1 confirms the lower bound binds; the upper bound allows an extra log(1/eps) factor (Theorem 4).",
				"the k=8/k=16 rows use the second Theorem 5 construction (one k^i-weight item per site per epoch): the bound there is k·eta = k·logW/log k.")
			return t
		},
	})

	register(Experiment{
		ID:    "E9",
		Title: "L1 tracking comparison table (Section 5)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E9",
				Title:      "Messages across k for eps=0.1 (unit stream): [14]-folklore vs [23]-HYZ vs this paper",
				PaperClaim: "Counter: O(k/eps·logW). HYZ: O((k+sqrt(k)/eps)·logW). Ours: O(k·log(eps·W)/log(k) + eps^-2·log(eps·W)) — the k-dependent term shrinks by log(k), winning for k >= 1/eps^2.",
				Headers:    []string{"k", "counter [14]", "HYZ [23]", "ours (dup)", "ours rel.err", "HYZ rel.err"},
			}
			eps := 0.1
			n := 200000
			ks := []int{4, 16, 64, 256, 1024} // crossover k = 1/eps^2 = 100 (constants shift it up)
			if quick {
				n = 60000
				ks = []int{4, 16, 64}
			}
			for _, k := range ks {
				// Counter tracker.
				cCoord := l1track.NewCounterCoordinator(k)
				cSites := make([]netsim.Site[l1track.CounterMsg], k)
				for i := 0; i < k; i++ {
					cSites[i] = l1track.NewCounterSite(i, eps)
				}
				cCl := netsim.NewCluster[l1track.CounterMsg](cCoord, cSites)
				g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
				if err := cCl.Run(g, xrand.New(uint64(10+k))); err != nil {
					panic(err)
				}

				// HYZ tracker.
				master := xrand.New(uint64(20 + k))
				hCoord := l1track.NewHYZCoordinator(k, eps)
				hSites := make([]netsim.Site[l1track.HYZMsg], k)
				for i := 0; i < k; i++ {
					hSites[i] = l1track.NewHYZSite(i, master.Split())
				}
				hCl := netsim.NewCluster[l1track.HYZMsg](hCoord, hSites)
				g = stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
				if err := hCl.Run(g, xrand.New(uint64(30+k))); err != nil {
					panic(err)
				}

				// The paper's duplication tracker (SFactor 4 keeps the
				// constant comparable to the other rows' constants).
				dCoord, dSites, err := l1track.NewDupTracker(k,
					l1track.DupParams{Eps: eps, Delta: 0.2, SFactor: 4}, xrand.New(uint64(40+k)))
				if err != nil {
					panic(err)
				}
				dns := make([]netsim.Site[core.Message], k)
				for i, s := range dSites {
					dns[i] = s
				}
				dCl := netsim.NewCluster[core.Message](dCoord, dns)
				g = stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
				if err := dCl.Run(g, xrand.New(uint64(50+k))); err != nil {
					panic(err)
				}

				t.AddRow(d(int64(k)),
					d(cCl.Stats.Total()), d(hCl.Stats.Total()), d(dCl.Stats.Total()),
					f3(stats.RelErr(dCoord.Estimate(), float64(n))),
					f3(stats.RelErr(hCoord.Estimate(), float64(n))))
			}
			t.Notes = append(t.Notes,
				"ours pays a k-independent eps^-2·log(eps·W) term plus k·log(eps·W)/log(k); its k-scaling flattens as k grows while the counter tracker grows linearly in k.",
				"error columns are single runs at delta=0.2; the HYZ estimator's drift correction biases high once per-site traffic W/k falls below eps·W/sqrt(k) (simplified round structure, see l1track docs).")
			return t
		},
	})

	register(Experiment{
		ID:    "E10",
		Title: "L1 tracking accuracy (Theorem 6 / Corollary 3)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E10",
				Title:      "Relative error of the duplication tracker at end of stream",
				PaperClaim: "W~ = (1±eps)·W with probability 1-delta at any fixed step.",
				Headers:    []string{"eps", "mean rel.err", "p95 rel.err", "max rel.err", "frac > eps"},
			}
			const k = 4
			n := 3000
			trials := 30
			if quick {
				trials = 12
			}
			for _, eps := range []float64{0.1, 0.2} {
				var errs []float64
				over := 0
				for tr := 0; tr < trials; tr++ {
					coord, sites, err := l1track.NewDupTracker(k,
						l1track.DupParams{Eps: eps, Delta: 0.2, SFactor: 4}, xrand.New(uint64(300+tr)))
					if err != nil {
						panic(err)
					}
					ns := make([]netsim.Site[core.Message], k)
					for i, s := range sites {
						ns[i] = s
					}
					cl := netsim.NewCluster[core.Message](coord, ns)
					rng := xrand.New(uint64(400 + tr))
					var W float64
					for i := 0; i < n; i++ {
						w := 1 + math.Floor(9*rng.Float64())
						W += w
						if err := cl.Feed(i%k, stream.Item{ID: uint64(i), Weight: w}); err != nil {
							panic(err)
						}
					}
					re := stats.RelErr(coord.Estimate(), W)
					errs = append(errs, re)
					if re > eps {
						over++
					}
				}
				t.AddRow(f2(eps), f3(stats.Mean(errs)), f3(stats.Quantile(errs, 0.95)),
					f3(stats.Max(errs)), f3(float64(over)/float64(trials)))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "E11",
		Title: "Theorem 7 lower-bound instance for L1 tracking",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E11",
				Title:      "k^i-epoch unit stream: messages vs the Omega(k·logW/log k) bound",
				PaperClaim: "Any correct L1 tracker must involve ~every site once per k-factor growth epoch: Omega(k·logW/log k) messages.",
				Headers:    []string{"k", "n=W", "tracker", "messages", "bound k·logW/log k", "ratio"},
			}
			ks := []int{8, 16}
			if quick {
				ks = []int{8}
			}
			for _, k := range ks {
				n := 1
				for n < 40000 {
					n *= k
				}
				bound := float64(k) * math.Log(float64(n)) / math.Log(float64(k))
				// Counter tracker on the epoch-blocks interleaving.
				cCoord := l1track.NewCounterCoordinator(k)
				cSites := make([]netsim.Site[l1track.CounterMsg], k)
				for i := 0; i < k; i++ {
					cSites[i] = l1track.NewCounterSite(i, 0.5)
				}
				cCl := netsim.NewCluster[l1track.CounterMsg](cCoord, cSites)
				g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.EpochBlocks(k))
				if err := cCl.Run(g, xrand.New(1)); err != nil {
					panic(err)
				}
				t.AddRow(d(int64(k)), d(int64(n)), "counter eps=0.5", d(cCl.Stats.Total()), f1(bound),
					f2(float64(cCl.Stats.Total())/bound))

				dCoord, dSites, err := l1track.NewDupTracker(k,
					l1track.DupParams{Eps: 0.25, Delta: 0.3, SFactor: 3}, xrand.New(2))
				if err != nil {
					panic(err)
				}
				dns := make([]netsim.Site[core.Message], k)
				for i, s := range dSites {
					dns[i] = s
				}
				dCl := netsim.NewCluster[core.Message](dCoord, dns)
				g = stream.NewGenerator(n, k, stream.UnitWeights(), stream.EpochBlocks(k))
				if err := dCl.Run(g, xrand.New(3)); err != nil {
					panic(err)
				}
				t.AddRow(d(int64(k)), d(int64(n)), "ours (dup)", d(dCl.Stats.Total()), f1(bound),
					f2(float64(dCl.Stats.Total())/bound))
			}
			t.Notes = append(t.Notes, "ratios >= 1: the lower bound binds for every correct tracker.")
			return t
		},
	})

	register(Experiment{
		ID:    "E12",
		Title: "SWOR vs SWR sample diversity on skewed streams (Section 1)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E12",
				Title:      "Distinct identities in a size-20 sample; 5 giants own 99.98% of W",
				PaperClaim: "With-replacement samples collapse onto the heavy items; SWOR samples each heavy item at most once and fills the rest with the tail.",
				Headers:    []string{"sampler", "mean distinct ids", "mean tail (non-giant) items"},
			}
			const k, s = 4, 20
			lights := 5000
			trials := 20
			if quick {
				trials = 8
			}
			var sworDistinct, sworTail, swrDistinct, swrTail float64
			for tr := 0; tr < trials; tr++ {
				st, _ := plantResidualStream(5, 0, lights, k)
				// SWOR.
				cfg := core.Config{K: k, S: s}
				master := xrand.New(uint64(500 + tr))
				coord := core.NewCoordinator(cfg, master.Split())
				sites := make([]netsim.Site[core.Message], k)
				for i := 0; i < k; i++ {
					sites[i] = core.NewSite(i, cfg, master.Split())
				}
				cl := netsim.NewCluster[core.Message](coord, sites)
				if err := cl.RunStream(st); err != nil {
					panic(err)
				}
				ids := map[uint64]bool{}
				for _, e := range coord.Query() {
					ids[e.Item.ID] = true
					if e.Item.ID >= 5 {
						sworTail++
					}
				}
				sworDistinct += float64(len(ids))
				// SWR.
				scfg := swr.Config{K: k, S: s}
				m2 := xrand.New(uint64(600 + tr))
				sCoord := swr.NewCoordinator(scfg)
				sSites := make([]netsim.Site[swr.Message], k)
				for i := 0; i < k; i++ {
					sSites[i] = swr.NewSite(scfg, m2.Split())
				}
				sCl := netsim.NewCluster[swr.Message](sCoord, sSites)
				if err := sCl.RunStream(st); err != nil {
					panic(err)
				}
				ids2 := map[uint64]bool{}
				for _, it := range sCoord.Sample() {
					if !ids2[it.ID] && it.ID >= 5 {
						swrTail++
					}
					ids2[it.ID] = true
				}
				swrDistinct += float64(len(ids2))
			}
			tr := float64(trials)
			t.AddRow("weighted SWOR (ours)", f2(sworDistinct/tr), f2(sworTail/tr))
			t.AddRow("weighted SWR", f2(swrDistinct/tr), f2(swrTail/tr))
			return t
		},
	})

	register(Experiment{
		ID:    "E13",
		Title: "Weighted SWR message complexity (Corollary 1)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E13",
				Title:      "Distributed weighted SWR messages (unit weights)",
				PaperClaim: "O((k + s·log s)·logW/log(2+k/s)) expected messages.",
				Headers:    []string{"k", "s", "W", "messages", "bound", "messages/bound"},
			}
			n := 100000
			trials := 3
			if quick {
				n = 30000
			}
			for _, k := range []int{8, 64} {
				for _, s := range []int{4, 32} {
					cfg := swr.Config{K: k, S: s}
					var msgs float64
					for tr := 0; tr < trials; tr++ {
						master := xrand.New(uint64(700 + tr + k*13 + s))
						coord := swr.NewCoordinator(cfg)
						sites := make([]netsim.Site[swr.Message], k)
						for i := 0; i < k; i++ {
							sites[i] = swr.NewSite(cfg, master.Split())
						}
						cl := netsim.NewCluster[swr.Message](coord, sites)
						g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
						if err := cl.Run(g, xrand.New(uint64(800+tr))); err != nil {
							panic(err)
						}
						msgs += float64(cl.Stats.Total())
					}
					msgs /= float64(trials)
					bound := (float64(k) + float64(s)*math.Log(float64(s)+1)) *
						math.Log(float64(n)) / math.Log(2+float64(k)/float64(s))
					t.AddRow(d(int64(k)), d(int64(s)), d(int64(n)), f1(msgs), f1(bound), f2(msgs/bound))
				}
			}
			return t
		},
	})
}
