package bench

import (
	"fmt"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Windowed application: push-only distributed sliding-window SWOR across all layers",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E15",
				Title:      "Sequence-stamped windowed protocol: messages vs width (k=4, s=8, sequential runtime)",
				PaperClaim: "Posed as future work (Section 6); no bound is claimed. The push-only protocol sends only local-window top-s entries plus amortized clock advances, with zero broadcasts; upstream traffic should fall as width grows (≈ s·log(width)/width per update) and stay far below the send-everything baseline of 1.0.",
				Headers:    []string{"workload", "width", "msgs/update", "candidates", "clocks", "coord retained", "max site kept"},
			}
			n := 100000
			if quick {
				n = 30000
			}
			const k, s = 4, 8
			cfg := core.Config{K: k, S: s}
			for _, c := range []struct {
				name  string
				width int
				wf    stream.WeightFn
			}{
				{"uniform", 500, stream.UniformWeights(10)},
				{"uniform", 2000, stream.UniformWeights(10)},
				{"uniform", 8000, stream.UniformWeights(10)},
				{"pareto-1.2", 2000, stream.ParetoWeights(1.2)},
				{"heavy-head", 2000, stream.HeavyHeadWeights(20, 1e9)},
			} {
				master := xrand.New(1501)
				coord := core.NewWindowCoordinator(cfg, c.width, master.Split())
				sites := make([]*core.WindowSite, k)
				machines := make([]netsim.Site[core.Message], k)
				for i := 0; i < k; i++ {
					sites[i] = core.NewWindowSite(i, cfg, c.width, master.Split())
					machines[i] = sites[i]
				}
				cl := netsim.NewCluster[core.Message](coord, machines)
				rng := xrand.New(1502)
				for i := 0; i < n; i++ {
					it := stream.Item{ID: uint64(i), Weight: c.wf(i, rng)}
					if err := cl.Feed(i%k, it); err != nil {
						panic(err)
					}
				}
				if cl.Stats.Downstream != 0 {
					panic(fmt.Sprintf("windowed protocol broadcast %d messages", cl.Stats.Downstream))
				}
				var clocks int64
				maxKept := 0
				for _, st := range sites {
					clocks += st.Clocks
					if st.MaxKept > maxKept {
						maxKept = st.MaxKept
					}
				}
				t.AddRow(c.name, d(int64(c.width)),
					f3(float64(cl.Stats.Upstream)/float64(n)),
					d(coord.Stats.WindowMsgs), d(clocks),
					d(int64(coord.Retained())), d(int64(maxKept)))
			}
			t.Notes = append(t.Notes,
				"candidates+clocks = total upstream; downstream is always 0 (no broadcasts). Compare E14: the synchronous-round threshold protocol needs coordinator-driven flush rounds the runtime contract cannot express; the push-only protocol trades a constant factor of messages for running unchanged on every runtime and shard count.")
			return t
		},
	})
}
