// Package bench is the experiment harness: every quantitative claim in
// the paper (the Theorem 3/4/6 message bounds, the Section 5 comparison
// table, the lower-bound constructions of Theorems 5 and 7, and the
// motivating SWOR-vs-SWR comparisons) has a named experiment that
// regenerates the corresponding table. EXPERIMENTS.md is produced from
// this registry via cmd/wrs-bench.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID         string
	Title      string
	PaperClaim string // what the paper predicts for this table
	Headers    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table. Formats: "text" (aligned columns), "md"
// (GitHub markdown), "csv".
func (t *Table) Render(w io.Writer, format string) {
	switch format {
	case "md":
		fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
		fmt.Fprintf(w, "**Paper claim.** %s\n\n", t.PaperClaim)
		fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
		seps := make([]string, len(t.Headers))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, r := range t.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
		}
		for _, n := range t.Notes {
			fmt.Fprintf(w, "\n%s\n", n)
		}
		fmt.Fprintln(w)
	case "csv":
		fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
		fmt.Fprintln(w, strings.Join(t.Headers, ","))
		for _, r := range t.Rows {
			fmt.Fprintln(w, strings.Join(r, ","))
		}
	default:
		fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
		fmt.Fprintf(w, "paper: %s\n", t.PaperClaim)
		widths := make([]int, len(t.Headers))
		for i, h := range t.Headers {
			widths[i] = len(h)
		}
		for _, r := range t.Rows {
			for i, c := range r {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		printRow := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
			fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
		}
		printRow(t.Headers)
		for _, r := range t.Rows {
			printRow(r)
		}
		for _, n := range t.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
		fmt.Fprintln(w)
	}
}

// Experiment is a registered, named experiment.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment. quick trims stream sizes and trial
	// counts for CI-speed runs; the shape conclusions are unchanged.
	Run func(quick bool) *Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in registration order.
func All() []Experiment { return registry }

// Find returns the experiment with the given ID (case-insensitive), or
// nil.
func Find(id string) *Experiment {
	for i := range registry {
		if strings.EqualFold(registry[i].ID, id) {
			return &registry[i]
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
