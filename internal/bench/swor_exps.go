package bench

import (
	"fmt"
	"math"

	"wrs/internal/baseline"
	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/sample"
	"wrs/internal/stats"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// theorem3Bound evaluates the Theorem 3 message bound
// k*log(W/s)/log(1+k/s) (without its constant).
func theorem3Bound(k, s int, W float64) float64 {
	return float64(k) * math.Log(W/float64(s)) / math.Log(1+float64(k)/float64(s))
}

// runCore drives one full-protocol run and returns the traffic stats and
// the coordinator.
func runCore(cfg core.Config, n int, wf stream.WeightFn, af stream.AssignFn, seed uint64) (netsim.Stats, *core.Coordinator) {
	master := xrand.New(seed)
	coord := core.NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[core.Message], cfg.K)
	for i := 0; i < cfg.K; i++ {
		sites[i] = core.NewSite(i, cfg, master.Split())
	}
	cl := netsim.NewCluster[core.Message](coord, sites)
	g := stream.NewGenerator(n, cfg.K, wf, af)
	if err := cl.Run(g, xrand.New(seed^0xD1B54A32D192ED03)); err != nil {
		panic(err)
	}
	return cl.Stats, coord
}

// avgCoreMessages averages total messages over trials.
func avgCoreMessages(cfg core.Config, n, trials int, wf stream.WeightFn, af stream.AssignFn, seed uint64) float64 {
	var total int64
	for t := 0; t < trials; t++ {
		st, _ := runCore(cfg, n, wf, af, seed+uint64(t)*1315423911)
		total += st.Total()
	}
	return float64(total) / float64(trials)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Weighted SWOR messages vs total weight W (Theorem 3)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E1",
				Title:      "Messages vs W (unit weights, k=32, s=16)",
				PaperClaim: "Expected messages O(k·log(W/s)/log(1+k/s)): linear in log W with everything else fixed.",
				Headers:    []string{"W", "messages", "bound k·log(W/s)/log(1+k/s)", "messages/bound"},
			}
			cfg := core.Config{K: 32, S: 16}
			ns := []int{1000, 10000, 100000, 1000000}
			trials := 5
			if quick {
				ns = []int{1000, 10000, 100000}
				trials = 3
			}
			var xs, ys []float64
			for _, n := range ns {
				msgs := avgCoreMessages(cfg, n, trials, stream.UnitWeights(), stream.RoundRobin(cfg.K), 101)
				bound := theorem3Bound(cfg.K, cfg.S, float64(n))
				t.AddRow(d(int64(n)), f1(msgs), f1(bound), f2(msgs/bound))
				xs = append(xs, math.Log(float64(n)))
				ys = append(ys, msgs)
			}
			slope := stats.Slope(xs, ys)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"messages grow linearly in log W: fitted slope %.1f msgs per e-fold of W (constant ratio column confirms the shape).", slope))
			return t
		},
	})

	register(Experiment{
		ID:    "E2",
		Title: "Weighted SWOR messages vs number of sites k (Theorem 3)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E2",
				Title:      "Messages vs k (unit weights, s=16, n=W fixed)",
				PaperClaim: "Messages O(k·log(W/s)/log(1+k/s)): sublinear growth in k once k >> s because the denominator grows with k.",
				Headers:    []string{"k", "messages", "bound", "messages/bound"},
			}
			n := 200000
			trials := 5
			if quick {
				n = 50000
				trials = 3
			}
			for _, k := range []int{4, 16, 64, 256} {
				cfg := core.Config{K: k, S: 16}
				msgs := avgCoreMessages(cfg, n, trials, stream.UnitWeights(), stream.RoundRobin(k), 202)
				bound := theorem3Bound(k, cfg.S, float64(n))
				t.AddRow(d(int64(k)), f1(msgs), f1(bound), f2(msgs/bound))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "E3",
		Title: "Weighted SWOR messages vs sample size s (Theorem 3)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E3",
				Title:      "Messages vs s (unit weights, k=64, n=W fixed)",
				PaperClaim: "The additive O~(k+s) behavior: messages grow far slower than the naive multiplicative O(k·s·logW).",
				Headers:    []string{"s", "messages", "bound", "messages/bound", "naive k·s·ln(W)"},
			}
			n := 200000
			trials := 5
			if quick {
				n = 50000
				trials = 3
			}
			for _, s := range []int{1, 4, 16, 64, 256} {
				cfg := core.Config{K: 64, S: s}
				msgs := avgCoreMessages(cfg, n, trials, stream.UnitWeights(), stream.RoundRobin(cfg.K), 303)
				bound := theorem3Bound(cfg.K, s, float64(n))
				naive := float64(cfg.K) * float64(s) * math.Log(float64(n))
				t.AddRow(d(int64(s)), f1(msgs), f1(bound), f2(msgs/bound), f1(naive))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "E4",
		Title: "Optimality ratio against the Corollary 2 lower bound",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E4",
				Title:      "Measured messages / lower-bound formula across configurations",
				PaperClaim: "Theorem 3 is optimal: the ratio to Omega(k·log(W/s)/log(1+k/s)) stays bounded by a constant across all parameters.",
				Headers:    []string{"k", "s", "W", "messages", "ratio"},
			}
			n := 100000
			trials := 3
			if quick {
				n = 30000
			}
			var ratios []float64
			for _, k := range []int{8, 64} {
				for _, s := range []int{4, 32} {
					cfg := core.Config{K: k, S: s}
					msgs := avgCoreMessages(cfg, n, trials, stream.UnitWeights(), stream.RoundRobin(k), 404)
					ratio := msgs / theorem3Bound(k, s, float64(n))
					ratios = append(ratios, ratio)
					t.AddRow(d(int64(k)), d(int64(s)), d(int64(n)), f1(msgs), f2(ratio))
				}
			}
			t.Notes = append(t.Notes, fmt.Sprintf(
				"ratio spread: min %.2f, max %.2f — bounded constants, i.e. the upper bound is tight in shape.",
				minOf(ratios), stats.Max(ratios)))
			return t
		},
	})

	register(Experiment{
		ID:    "E5",
		Title: "Message complexity vs naive baselines (Section 1.2)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E5",
				Title:      "Ours vs per-site independent samplers vs send-everything",
				PaperClaim: "Naive independent site samplers cost O(k·s·logW) — a multiplicative s — while the paper's protocol is additive O~(k+s).",
				Headers:    []string{"s", "ours", "independent (O(ks·logW))", "send-all (n)", "independent/ours"},
			}
			n := 100000
			trials := 3
			if quick {
				n = 30000
			}
			const k = 16
			for _, s := range []int{8, 32, 128} {
				cfg := core.Config{K: k, S: s}
				ours := avgCoreMessages(cfg, n, trials, stream.UnitWeights(), stream.RoundRobin(k), 505)
				var indep float64
				for tr := 0; tr < trials; tr++ {
					master := xrand.New(606 + uint64(tr))
					coord := baseline.NewCoordinator(s)
					sites := make([]netsim.Site[baseline.Msg], k)
					for i := 0; i < k; i++ {
						sites[i] = baseline.NewIndependentSite(s, master.Split())
					}
					cl := netsim.NewCluster[baseline.Msg](coord, sites)
					g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
					if err := cl.Run(g, xrand.New(707+uint64(tr))); err != nil {
						panic(err)
					}
					indep += float64(cl.Stats.Total())
				}
				indep /= float64(trials)
				t.AddRow(d(int64(s)), f1(ours), f1(indep), d(int64(n)), f2(indep/ours))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "E6",
		Title: "Sample distribution vs exact weighted SWOR (Proposition 1)",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "E6",
				Title:      "Inclusion frequencies of the full protocol vs the exact SWOR law",
				PaperClaim: "The protocol maintains an exact weighted SWOR at every instant (Theorem 3 correctness).",
				Headers:    []string{"item weight", "empirical inclusion", "exact inclusion", "|diff|"},
			}
			weights := []float64{1, 2, 4, 8, 16}
			want := sample.InclusionProbs(weights, 2)
			cfg := core.Config{K: 3, S: 2}
			trials := 60000
			if quick {
				trials = 15000
			}
			counts := make([]float64, len(weights))
			for tr := 0; tr < trials; tr++ {
				master := xrand.New(uint64(tr)*2654435761 + 99)
				coord := core.NewCoordinator(cfg, master.Split())
				sites := make([]netsim.Site[core.Message], cfg.K)
				for i := 0; i < cfg.K; i++ {
					sites[i] = core.NewSite(i, cfg, master.Split())
				}
				cl := netsim.NewCluster[core.Message](coord, sites)
				for i, w := range weights {
					if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
						panic(err)
					}
				}
				for _, e := range coord.Query() {
					counts[e.Item.ID]++
				}
			}
			obs := make([]float64, len(weights))
			exp := make([]float64, len(weights))
			for i := range weights {
				got := counts[i] / float64(trials)
				t.AddRow(f1(weights[i]), f3(got), f3(want[i]), f3(math.Abs(got-want[i])))
				obs[i] = counts[i]
				exp[i] = want[i] * float64(trials)
			}
			chi, p := stats.ChiSquare(obs, exp, len(weights)-1)
			t.Notes = append(t.Notes, fmt.Sprintf("chi-square %.2f, p-value %.3f over %d trials.", chi, p, trials))
			return t
		},
	})

	register(Experiment{
		ID:    "A1",
		Title: "Ablation: level sets disabled",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "A1",
				Title:      "Level-set withholding on/off across workloads",
				PaperClaim: "Level sets guarantee w_i <= W/(4s) for released items — the hypothesis Proposition 3's tail bound needs. They cost at most one early message per withheld slot plus one broadcast per saturated level; the worst-case bound, not the typical count, is what they buy.",
				Headers:    []string{"workload", "with level sets", "without", "overhead"},
			}
			n := 100000
			if quick {
				n = 30000
			}
			cfg := core.Config{K: 8, S: 8}
			cfgOff := cfg
			cfgOff.DisableLevelSets = true
			for name, wf := range map[string]stream.WeightFn{
				"unit":       stream.UnitWeights(),
				"pareto-1.1": stream.ParetoWeights(1.1),
				"heavy-head": stream.HeavyHeadWeights(5, 1e12),
			} {
				with := avgCoreMessages(cfg, n, 3, wf, stream.RoundRobin(cfg.K), 808)
				without := avgCoreMessages(cfgOff, n, 3, wf, stream.RoundRobin(cfg.K), 808)
				t.AddRow(name, f1(with), f1(without), f1(with-without))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "A2",
		Title: "Ablation: epoch filtering disabled",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "A2",
				Title:      "Epoch threshold broadcasting on/off (unit weights)",
				PaperClaim: "Without local filtering every update reaches the coordinator: Theta(n) messages, the trivial protocol.",
				Headers:    []string{"n", "with epochs", "without (≈n)"},
			}
			ns := []int{10000, 100000}
			if quick {
				ns = []int{10000, 30000}
			}
			for _, n := range ns {
				cfg := core.Config{K: 8, S: 8}
				with := avgCoreMessages(cfg, n, 3, stream.UnitWeights(), stream.RoundRobin(cfg.K), 909)
				cfg.DisableEpochs = true
				without := avgCoreMessages(cfg, n, 1, stream.UnitWeights(), stream.RoundRobin(cfg.K), 909)
				t.AddRow(d(int64(n)), f1(with), f1(without))
			}
			return t
		},
	})

	register(Experiment{
		ID:    "A3",
		Title: "Proposition 7: random bits per site decision",
		Run: func(quick bool) *Table {
			t := &Table{
				ID:         "A3",
				Title:      "Lazy exponential generation at the sites",
				PaperClaim: "Each filtering decision needs O(1) random bits in expectation; full keys are materialized only for sent items.",
				Headers:    []string{"n", "decision bits/item", "total bits/item", "sent fraction"},
			}
			ns := []int{10000, 100000}
			if quick {
				ns = []int{10000, 30000}
			}
			for _, n := range ns {
				cfg := core.Config{K: 8, S: 8}
				master := xrand.New(1111)
				coord := core.NewCoordinator(cfg, master.Split())
				raw := make([]*core.Site, cfg.K)
				sites := make([]netsim.Site[core.Message], cfg.K)
				for i := 0; i < cfg.K; i++ {
					raw[i] = core.NewSite(i, cfg, master.Split())
					sites[i] = raw[i]
				}
				cl := netsim.NewCluster[core.Message](coord, sites)
				g := stream.NewGenerator(n, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
				if err := cl.Run(g, xrand.New(1212)); err != nil {
					panic(err)
				}
				var dec, tot, obs, sent int64
				for _, s := range raw {
					dec += s.DecisionBits
					tot += s.TotalBits
					obs += s.Observed
					sent += s.Sent
				}
				t.AddRow(d(int64(n)), f2(float64(dec)/float64(obs)), f2(float64(tot)/float64(obs)),
					f3(float64(sent)/float64(obs)))
			}
			return t
		},
	})
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
