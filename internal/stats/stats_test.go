package stats

import (
	"math"
	"testing"

	"wrs/internal/xrand"
)

func TestDescriptive(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("Variance = %v, want 2.5", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if m := Max(xs); m != 5 {
		t.Errorf("Max = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestGammaIncQKnownValues(t *testing.T) {
	// Q(a, x) reference values.
	cases := []struct{ a, x, want float64 }{
		// Q(0.5, x) = erfc(sqrt(x))
		{0.5, 1, math.Erfc(1)},
		{0.5, 4, math.Erfc(2)},
		// Q(1, x) = e^-x
		{1, 1, math.Exp(-1)},
		{1, 5, math.Exp(-5)},
		// Q(2, x) = e^-x (1+x)
		{2, 3, math.Exp(-3) * 4},
		// x=0
		{3, 0, 1},
	}
	for _, c := range cases {
		got := GammaIncQ(c.a, c.x)
		if math.Abs(got-c.want) > 1e-10*math.Max(1, math.Abs(c.want)) {
			t.Errorf("GammaIncQ(%v, %v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestChiSquareUniformFit(t *testing.T) {
	// Chi-square of a genuinely uniform sample should usually not reject.
	rng := xrand.New(1)
	const buckets, n = 10, 100000
	obs := make([]float64, buckets)
	exp := make([]float64, buckets)
	for i := 0; i < n; i++ {
		obs[rng.Intn(buckets)]++
	}
	for i := range exp {
		exp[i] = n / buckets
	}
	_, p := ChiSquare(obs, exp, 0)
	if p < 0.001 {
		t.Errorf("uniform data rejected with p = %v", p)
	}
}

func TestChiSquareDetectsBias(t *testing.T) {
	obs := []float64{200, 100, 100, 100}
	exp := []float64{125, 125, 125, 125}
	stat, p := ChiSquare(obs, exp, 0)
	if stat < 40 {
		t.Errorf("stat = %v, want large", stat)
	}
	if p > 1e-6 {
		t.Errorf("biased data accepted with p = %v", p)
	}
}

func TestSlope(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	if b := Slope(xs, ys); math.Abs(b-2) > 1e-12 {
		t.Errorf("Slope = %v, want 2", b)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 5x^1.7
	xs := []float64{1, 10, 100, 1000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.7)
	}
	if b := LogLogSlope(xs, ys); math.Abs(b-1.7) > 1e-9 {
		t.Errorf("LogLogSlope = %v, want 1.7", b)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", e)
	}
	if e := RelErr(0.5, 0); e != 0.5 {
		t.Errorf("RelErr with zero want = %v", e)
	}
}
