// Package stats provides the small statistical toolkit used to validate
// the samplers (chi-square goodness of fit against exact inclusion
// probabilities) and to analyze experiment sweeps (descriptive statistics
// and log-log slope fits for message-complexity curves).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ChiSquare computes the chi-square statistic of observed counts against
// expected counts and the corresponding p-value (upper tail, df =
// len(observed)-1 unless df > 0 is supplied). Buckets with expected count
// below 1e-12 must have zero observations.
func ChiSquare(observed []float64, expected []float64, df int) (stat, p float64) {
	if len(observed) != len(expected) {
		panic("stats: ChiSquare length mismatch")
	}
	k := 0
	for i := range observed {
		if expected[i] < 1e-12 {
			continue
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
		k++
	}
	if df <= 0 {
		df = k - 1
	}
	if df <= 0 {
		return stat, 1
	}
	p = GammaIncQ(float64(df)/2, stat/2)
	return stat, p
}

// GammaIncQ returns the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), the chi-square upper-tail probability with
// a = df/2, x = stat/2. Implementation follows Numerical Recipes: series
// for x < a+1, continued fraction otherwise.
func GammaIncQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gser(a, x)
	default:
		return gcf(a, x)
	}
}

// gser: series representation of P(a,x).
func gser(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < itmax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gcf: continued fraction representation of Q(a,x) via modified Lentz.
func gcf(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// LogLogSlope fits log(y) = a + b*log(x) by least squares and returns the
// slope b. It is used to check asymptotic shapes (e.g. message counts
// growing like log W means slope ~0 in W on a log-log plot of
// messages/logW... the experiments fit in the appropriate transformed
// coordinates).
func LogLogSlope(xs, ys []float64) float64 {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return Slope(lx, ly)
}

// Slope fits y = a + b*x by least squares and returns b.
func Slope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	return num / den
}

// KSTest returns the Kolmogorov–Smirnov statistic D of xs against the
// continuous CDF cdf, and the asymptotic p-value. Used to validate the
// generated exponential/uniform variates against their laws.
func KSTest(xs []float64, cdf func(float64) float64) (dStat, p float64) {
	n := len(xs)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := cdf(x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > dStat {
			dStat = lo
		}
		if hi > dStat {
			dStat = hi
		}
	}
	// Asymptotic Kolmogorov distribution (Marsaglia et al. approximation
	// via the alternating series; adequate for n >= 35).
	lambda := (math.Sqrt(float64(n)) + 0.12 + 0.11/math.Sqrt(float64(n))) * dStat
	p = 0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(j)*float64(j))
		p += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p *= 2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return dStat, p
}

// RelErr returns |got-want| / |want| (or |got| when want == 0).
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
