package stats

import (
	"math"
	"testing"

	"wrs/internal/xrand"
)

func TestKSUniformAccepts(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	d, p := KSTest(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if p < 0.001 {
		t.Errorf("uniform sample rejected: D=%v p=%v", d, p)
	}
}

func TestKSExponentialAccepts(t *testing.T) {
	rng := xrand.New(2)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Exp()
	}
	_, p := KSTest(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return -math.Expm1(-x)
	})
	if p < 0.001 {
		t.Errorf("exponential sample rejected: p=%v", p)
	}
}

func TestKSDetectsWrongDistribution(t *testing.T) {
	rng := xrand.New(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64() * rng.Float64() // not uniform
	}
	d, p := KSTest(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if p > 1e-6 {
		t.Errorf("non-uniform sample accepted: D=%v p=%v", d, p)
	}
}

func TestKSEmpty(t *testing.T) {
	if d, p := KSTest(nil, func(float64) float64 { return 0 }); d != 0 || p != 1 {
		t.Errorf("empty KS = (%v, %v)", d, p)
	}
}
