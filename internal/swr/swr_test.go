package swr

import (
	"math"
	"testing"

	"wrs/internal/netsim"
	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func buildCluster(cfg Config, seed uint64) (*netsim.Cluster[Message], *Coordinator, []*Site) {
	master := xrand.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]netsim.Site[Message], cfg.K)
	raw := make([]*Site, cfg.K)
	for i := 0; i < cfg.K; i++ {
		raw[i] = NewSite(cfg, master.Split())
		sites[i] = raw[i]
	}
	return netsim.NewCluster[Message](coord, sites), coord, raw
}

func TestRejectsNonIntegerWeights(t *testing.T) {
	cfg := Config{K: 1, S: 1}
	site := NewSite(cfg, xrand.New(1))
	for _, w := range []float64{0.5, -1, 0, math.Inf(1)} {
		if err := site.Observe(stream.Item{Weight: w}, func(Message) {}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if err := site.Observe(stream.Item{Weight: 3}, func(Message) {}); err != nil {
		t.Errorf("integer weight rejected: %v", err)
	}
}

func TestSlotMarginalDistribution(t *testing.T) {
	// P(slot holds item e) = w_e / W for every slot.
	weights := []float64{1, 2, 4, 8, 16}
	const W = 31.0
	cfg := Config{K: 3, S: 2}
	const trials = 40000
	counts := make([][]float64, cfg.S)
	for i := range counts {
		counts[i] = make([]float64, len(weights))
	}
	for tr := 0; tr < trials; tr++ {
		cl, coord, _ := buildCluster(cfg, uint64(tr)*31+7)
		for i, w := range weights {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
		s := coord.Sample()
		if len(s) != cfg.S {
			t.Fatalf("sample size %d", len(s))
		}
		for slot, it := range s {
			counts[slot][it.ID]++
		}
	}
	for slot := range counts {
		for i, w := range weights {
			got := counts[slot][i] / trials
			want := w / W
			sigma := math.Sqrt(want * (1 - want) / trials)
			if math.Abs(got-want) > 5*sigma {
				t.Errorf("slot %d P(item %d) = %v, want %v", slot, i, got, want)
			}
		}
	}
}

func TestInclusionProbability(t *testing.T) {
	weights := []float64{1, 2, 4, 8, 16}
	const W = 31.0
	cfg := Config{K: 2, S: 4}
	const trials = 30000
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		cl, coord, _ := buildCluster(cfg, uint64(tr)*97+3)
		for i, w := range weights {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
		seen := map[uint64]bool{}
		for _, it := range coord.Sample() {
			if !seen[it.ID] {
				seen[it.ID] = true
				counts[it.ID]++
			}
		}
	}
	for i, w := range weights {
		got := counts[i] / trials
		want := sample.SWRInclusionProb(w, W, cfg.S)
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("inclusion[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMessageSublinearity(t *testing.T) {
	cfg := Config{K: 8, S: 4}
	cl, coord, _ := buildCluster(cfg, 5)
	const n = 30000
	g := stream.NewGenerator(n, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
	if err := cl.Run(g, xrand.New(6)); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Upstream > n/5 {
		t.Errorf("upstream = %d not sublinear in n = %d", cl.Stats.Upstream, n)
	}
	if coord.Candidates != cl.Stats.Upstream {
		t.Errorf("coordinator counted %d candidates, cluster %d", coord.Candidates, cl.Stats.Upstream)
	}
	if coord.Theta() >= 1.0/64 {
		t.Errorf("theta = %v did not advance on a %d-item stream", coord.Theta(), n)
	}
}

func TestThetaMonotoneAndSiteLag(t *testing.T) {
	cfg := Config{K: 4, S: 4}
	cl, coord, sites := buildCluster(cfg, 9)
	g := stream.NewGenerator(5000, cfg.K, stream.IntegerWeights(stream.UniformWeights(9)), stream.RandomSites(cfg.K))
	rng := xrand.New(10)
	g.Reset()
	prev := coord.Theta()
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		if coord.Theta() > prev {
			t.Fatalf("theta increased: %v -> %v", prev, coord.Theta())
		}
		prev = coord.Theta()
		for _, s := range sites {
			if s.Theta() < coord.Theta() {
				t.Fatalf("site theta %v below coordinator theta %v", s.Theta(), coord.Theta())
			}
		}
	}
}

func TestHeavyItemDominatesSWR(t *testing.T) {
	// One item with 99% of the weight occupies ~99% of slots: the
	// motivating weakness of SWR from Section 1.
	cfg := Config{K: 2, S: 10}
	heavyFrac := 0.0
	const trials = 2000
	for tr := 0; tr < trials; tr++ {
		cl, coord, _ := buildCluster(cfg, uint64(tr)+1000)
		cl.Feed(0, stream.Item{ID: 0, Weight: 990})
		for i := 1; i <= 10; i++ {
			cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: 1})
		}
		for _, it := range coord.Sample() {
			if it.ID == 0 {
				heavyFrac++
			}
		}
	}
	heavyFrac /= trials * float64(cfg.S)
	if math.Abs(heavyFrac-0.99) > 0.01 {
		t.Errorf("heavy item occupies %v of SWR slots, want ~0.99", heavyFrac)
	}
}

// TestExactWinnerInvariant reconstructs the unfiltered tag process via
// TagHook and checks that each coordinator slot holds exactly the item
// with the minimum tag — i.e. filtering never loses a winner.
func TestExactWinnerInvariant(t *testing.T) {
	cfg := Config{K: 4, S: 6}
	type tagRec struct {
		id  uint64
		tag float64
	}
	best := make([]tagRec, cfg.S)
	for i := range best {
		best[i] = tagRec{tag: math.Inf(1)}
	}
	cl, coord, sites := buildCluster(cfg, 77)
	for _, s := range sites {
		s.TagHook = func(sampler int, id uint64, tag float64) {
			if tag < best[sampler].tag {
				best[sampler] = tagRec{id: id, tag: tag}
			}
		}
	}
	g := stream.NewGenerator(4000, cfg.K, stream.IntegerWeights(stream.UniformWeights(20)), stream.RandomSites(cfg.K))
	rng := xrand.New(78)
	g.Reset()
	step := 0
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		step++
		if step%500 == 0 || step == 4000 {
			smp := coord.Sample()
			if len(smp) != cfg.S {
				t.Fatalf("step %d: sample size %d", step, len(smp))
			}
			for slot, it := range smp {
				if it.ID != best[slot].id {
					t.Fatalf("step %d slot %d: coordinator holds %d, true winner %d",
						step, slot, it.ID, best[slot].id)
				}
			}
		}
	}
}
