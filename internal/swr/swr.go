// Package swr implements distributed weighted sampling *with* replacement
// via the paper's reduction to unweighted sampling (Section 2.2,
// Corollary 1).
//
// Conceptually, an item (e, w) with integer weight w is w unit copies; a
// single unweighted sample is the copy with the minimum uniform tag, so
// item e wins a sampler with probability w/W. The s samplers are
// independent. The implementation keeps all the reduction's shortcuts:
//
//   - a site never materializes w copies: the minimum of w uniforms has
//     CDF 1-(1-x)^w and is sampled directly;
//   - the number of samplers receiving a candidate from one item is drawn
//     in a single Binomial(s, alpha) trial, alpha = 1-(1-theta)^w, which
//     is distributionally identical to s independent decisions (the paper
//     makes the same observation in the proof of Corollary 1);
//   - the coordinator maintains a tag threshold theta that halves as the
//     samplers' minima shrink and is re-broadcast lazily once it has
//     dropped by the round factor 2 + k/s, giving the
//     log(W)/log(2+k/s) round structure of Theorem 1/[CMYZ12].
//
// One candidate message is sent per (item, sampler) pair, matching the
// paper's message accounting.
package swr

import (
	"fmt"
	"math"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// MsgKind discriminates protocol messages.
type MsgKind uint8

const (
	// MsgCandidate carries an item and its tag to one sampler slot.
	MsgCandidate MsgKind = iota
	// MsgThreshold announces a new tag threshold to all sites.
	MsgThreshold
)

// Message is a protocol message.
type Message struct {
	Kind      MsgKind
	Item      stream.Item
	Sampler   int     // candidate: target sampler slot
	Tag       float64 // candidate: min-of-w-uniforms tag
	Threshold float64 // threshold update
}

// Words returns the message size in machine words.
func (m Message) Words() int {
	if m.Kind == MsgCandidate {
		return 5
	}
	return 2
}

// Config holds the protocol parameters.
type Config struct {
	K int // number of sites
	S int // sample size (with replacement)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.K < 1 || c.S < 1 {
		return fmt.Errorf("swr: need K >= 1 and S >= 1, got K=%d S=%d", c.K, c.S)
	}
	return nil
}

// RoundFactor returns the lazy re-broadcast factor 2 + k/s.
func (c Config) RoundFactor() float64 { return 2 + float64(c.K)/float64(c.S) }

// Site filters local arrivals against the current tag threshold.
type Site struct {
	cfg   Config
	rng   *xrand.RNG
	theta float64
	idxs  []int

	// TagHook, when set, receives every (sampler, tag) pair the site
	// *would* deliver with no filtering, by materializing the suppressed
	// tags from their conditional distribution (tests only; doubles the
	// randomness consumed but leaves sent tags' joint law unchanged).
	TagHook func(sampler int, id uint64, tag float64)
}

// NewSite returns a site state machine with an independent RNG.
func NewSite(cfg Config, rng *xrand.RNG) *Site {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Site{cfg: cfg, rng: rng, theta: 1}
}

// Theta returns the site's current tag threshold.
func (st *Site) Theta() float64 { return st.theta }

// Observe processes one local arrival. Weights must be positive integers
// (the duplication reduction is defined for integer weights).
func (st *Site) Observe(it stream.Item, send func(Message)) error {
	w := it.Weight
	if !(w > 0) || w != math.Floor(w) || math.IsInf(w, 0) {
		return fmt.Errorf("swr: weight must be a positive integer, got %v", w)
	}
	// alpha = P(min of w uniforms < theta) = 1 - (1-theta)^w.
	alpha := 1.0
	if st.theta < 1 {
		alpha = -math.Expm1(w * math.Log1p(-st.theta))
	}
	x := st.rng.Binomial(st.cfg.S, alpha)
	if x == 0 && st.TagHook == nil {
		return nil
	}
	st.idxs = st.rng.Choose(st.cfg.S, x, st.idxs)
	// minOfWTag inverts the min-of-w-uniforms CDF at c: 1 - (1-c)^(1/w).
	minOfWTag := func(c float64) float64 {
		return -math.Expm1(math.Log1p(-c) / w)
	}
	for _, idx := range st.idxs {
		// Tag conditioned below theta: CDF value c = alpha*V, V~U(0,1).
		tag := minOfWTag(alpha * st.rng.OpenFloat64())
		if st.TagHook != nil {
			st.TagHook(idx, it.ID, tag)
		}
		send(Message{Kind: MsgCandidate, Item: it, Sampler: idx, Tag: tag})
	}
	if st.TagHook != nil {
		// Materialize the suppressed tags (conditioned >= theta) so tests
		// can reconstruct the unfiltered process exactly.
		selected := make(map[int]bool, x)
		for _, idx := range st.idxs {
			selected[idx] = true
		}
		for idx := 0; idx < st.cfg.S; idx++ {
			if selected[idx] {
				continue
			}
			tag := minOfWTag(alpha + st.rng.OpenFloat64()*(1-alpha))
			st.TagHook(idx, it.ID, tag)
		}
	}
	return nil
}

// HandleBroadcast lowers the site's threshold (thresholds only shrink).
func (st *Site) HandleBroadcast(m Message) {
	if m.Kind == MsgThreshold && m.Threshold < st.theta {
		st.theta = m.Threshold
	}
}

// Coordinator tracks the minimum tag per sampler slot.
type Coordinator struct {
	cfg       Config
	tags      []float64
	items     []stream.Item
	have      int
	theta     float64 // internal threshold (halves as minima shrink)
	published float64 // last broadcast threshold

	// Stats.
	Candidates int64
	Broadcasts int64
}

// NewCoordinator returns the coordinator state machine.
func NewCoordinator(cfg Config) *Coordinator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	tags := make([]float64, cfg.S)
	for i := range tags {
		tags[i] = math.Inf(1)
	}
	return &Coordinator{cfg: cfg, tags: tags, items: make([]stream.Item, cfg.S), theta: 1, published: 1}
}

// HandleMessage folds a candidate into its sampler slot and advances the
// round threshold when every slot's minimum has dropped below theta/2.
func (c *Coordinator) HandleMessage(m Message, bcast func(Message)) {
	if m.Kind != MsgCandidate {
		return
	}
	c.Candidates++
	slot := m.Sampler
	if math.IsInf(c.tags[slot], 1) {
		c.have++
	}
	if m.Tag < c.tags[slot] {
		c.tags[slot] = m.Tag
		c.items[slot] = m.Item
	}
	if c.have < c.cfg.S {
		return
	}
	maxTag := 0.0
	for _, t := range c.tags {
		if t > maxTag {
			maxTag = t
		}
	}
	for maxTag < c.theta/2 {
		c.theta /= 2
	}
	// Lazy re-broadcast: only once theta fell by the round factor.
	if c.published/c.theta >= c.cfg.RoundFactor() {
		c.published = c.theta
		c.Broadcasts++
		bcast(Message{Kind: MsgThreshold, Threshold: c.theta})
	}
}

// Sample returns the current with-replacement sample: slot i holds item e
// with probability w_e/W, independently across slots. Slots that have not
// received any candidate yet (only before the first arrivals) are
// omitted.
func (c *Coordinator) Sample() []stream.Item {
	out := make([]stream.Item, 0, c.cfg.S)
	for i, t := range c.tags {
		if !math.IsInf(t, 1) {
			out = append(out, c.items[i])
		}
	}
	return out
}

// Theta returns the coordinator's internal threshold.
func (c *Coordinator) Theta() float64 { return c.theta }
