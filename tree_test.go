package wrs

import (
	"fmt"
	"math"
	"testing"

	"wrs/internal/quantile"
	"wrs/internal/xrand"
)

// treeShapes is the tree-topology acceptance matrix: the flat baseline
// plus the two relay shapes the hierarchical fabric is pinned on.
type treeShape struct {
	name          string
	fanout, depth int
}

func treeShapes() []treeShape {
	return []treeShape{
		{"flat", 0, 0},
		{"fanout=2,depth=2", 2, 2},
		{"fanout=4,depth=2", 4, 2},
	}
}

func (ts treeShape) seq() RuntimeSpec {
	if ts.depth == 0 {
		return Sequential()
	}
	return SequentialTree(ts.fanout, ts.depth)
}

func (ts treeShape) tcp() RuntimeSpec {
	if ts.depth == 0 {
		return TCP("")
	}
	return TCPTree("", ts.fanout, ts.depth)
}

// TestTreeSamplerSequentialBitIdentical pins the strongest tree
// guarantee: on the deterministic runtime, every tree shape × shard
// count yields the SAME sample, key for key and in order, and the same
// site-edge traffic as the flat topology — relays only ever drop
// messages the coordinator was going to drop.
func TestTreeSamplerSequentialBitIdentical(t *testing.T) {
	const k, s, n, seed = 6, 10, 5000, 41
	feed := func(ds *DistributedSampler) {
		t.Helper()
		wrng := xrand.New(7)
		var batch []Item
		for i := 0; i < n; i++ {
			batch = append(batch, Item{ID: uint64(i), Weight: wrng.Pareto(1.3)})
			if len(batch) == 100 {
				if err := ds.ObserveBatch(i%k, batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	for _, shards := range []int{1, 2} {
		flat, err := NewDistributedSampler(k, s, WithSeed(seed), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		feed(flat)
		want := flat.Sample()
		wantStats := flat.Stats()
		flat.Close()

		for _, shape := range treeShapes()[1:] {
			t.Run(fmt.Sprintf("%s/shards=%d", shape.name, shards), func(t *testing.T) {
				tree, err := NewDistributedSampler(k, s,
					WithSeed(seed), WithShards(shards), WithRuntime(shape.seq()))
				if err != nil {
					t.Fatal(err)
				}
				defer tree.Close()
				feed(tree)
				got := tree.Sample()
				if len(got) != len(want) {
					t.Fatalf("sample size %d, flat %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("entry %d: %+v, flat %+v", i, got[i], want[i])
					}
				}
				if st := tree.Stats(); st != wantStats {
					t.Errorf("site-edge stats %+v, flat %+v", st, wantStats)
				}
			})
		}
	}
}

// TestTreeMatrixSampler is the tree half of the shard-matrix suite:
// the sampler over every tree shape × TCP and sequential runtimes ×
// shards {1, 2}, validated against the giants oracle (async runtimes
// are not bit-comparable; any valid weighted SWOR must hold every
// giant).
func TestTreeMatrixSampler(t *testing.T) {
	const giants, k, s = 5, 8, 10
	for _, shape := range treeShapes() {
		for _, mode := range []struct {
			name string
			spec RuntimeSpec
		}{{"seq", shape.seq()}, {"tcp", shape.tcp()}} {
			for _, shards := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", shape.name, mode.name, shards), func(t *testing.T) {
					ds, err := NewDistributedSampler(k, s,
						WithSeed(3), WithRuntime(mode.spec), WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					defer ds.Close()
					for i := 0; i < giants; i++ {
						if err := ds.Observe(i%k, Item{ID: uint64(1e6 + i), Weight: 1e12}); err != nil {
							t.Fatal(err)
						}
					}
					var batch []Item
					for i := 0; i < 6000; i++ {
						batch = append(batch, Item{ID: uint64(i), Weight: 1})
						if len(batch) == 250 {
							if err := ds.ObserveBatch(i%k, batch); err != nil {
								t.Fatal(err)
							}
							batch = batch[:0]
						}
					}
					if err := ds.Flush(); err != nil {
						t.Fatal(err)
					}
					smp := ds.Sample()
					if len(smp) != s {
						t.Fatalf("sample size %d, want %d", len(smp), s)
					}
					seen := map[uint64]bool{}
					for i, e := range smp {
						if seen[e.Item.ID] {
							t.Errorf("duplicate id %d", e.Item.ID)
						}
						seen[e.Item.ID] = true
						if i > 0 && smp[i].Key > smp[i-1].Key {
							t.Error("sample not sorted by descending key")
						}
					}
					for i := 0; i < giants; i++ {
						if !seen[uint64(1e6+i)] {
							t.Errorf("giant %d missing", i)
						}
					}
					if ds.Stats().Upstream == 0 {
						t.Error("no upstream traffic recorded")
					}
				})
			}
		}
	}
}

// TestTreeWindowedMatrix runs the windowed app through every tree shape
// × shards {1, 2}: sequential trees must stay bit-exact against the
// windowed oracle (the window protocol passes through relays untouched
// — no broadcasts, so the threshold filter never engages and the
// non-mergeable coordinator keeps the union merge off), and TCP trees
// must match it set-exactly after a flush.
func TestTreeWindowedMatrix(t *testing.T) {
	const k, s, width, n = 3, 6, 30, 800
	for _, shape := range treeShapes() {
		for _, mode := range []struct {
			name string
			spec RuntimeSpec
		}{{"seq", shape.seq()}, {"tcp", shape.tcp()}} {
			for _, shards := range []int{1, 2} {
				const seed = 9
				t.Run(fmt.Sprintf("%s/%s/shards=%d", shape.name, mode.name, shards), func(t *testing.T) {
					h, err := Open(Windowed(k, s, width),
						WithSeed(seed), WithRuntime(mode.spec), WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					defer h.Close()
					oracle := newWindowedOracle(k, s, width, shards, seed)
					wrng := xrand.New(seed ^ 0xABCD)
					for i := 0; i < n; i++ {
						it := Item{ID: uint64(i)*2654435761 + seed, Weight: 0.2 + 20*wrng.Float64()}
						site := i % k
						oracle.observe(site, it)
						if err := h.Observe(site, it); err != nil {
							t.Fatal(err)
						}
					}
					if err := h.Flush(); err != nil {
						t.Fatal(err)
					}
					got := h.Query()
					if want := oracle.sample(); !sameSamples(got.Items, want) {
						t.Fatalf("sample diverged from oracle\n got %+v\nwant %+v", got.Items, want)
					}
					if st := h.Stats(); st.Downstream != 0 {
						t.Errorf("windowed protocol broadcast %d messages through the tree; it is push-only", st.Downstream)
					}
				})
			}
		}
	}
}

// TestTreeQuantilesMatrix runs the quantile sketch through every tree
// shape × shards {1, 2} over TCP (the union merge is ON for quantiles —
// its coordinator is the plain mergeable sampler) and checks the
// (eps, delta) guarantee against the exact weight-CDF oracle.
func TestTreeQuantilesMatrix(t *testing.T) {
	const k, eps, delta, n = 4, 0.15, 0.1, 8000
	for _, shape := range treeShapes() {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/shards=%d", shape.name, shards), func(t *testing.T) {
				q, err := Open(Quantiles(k, eps, delta),
					WithSeed(17), WithRuntime(shape.tcp()), WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer q.Close()
				var oracle quantile.Oracle
				var batch []Item
				for i := 0; i < n; i++ {
					w := 1 + float64((i*i)%97)
					oracle.Observe(w)
					batch = append(batch, Item{ID: uint64(i), Weight: w})
					if len(batch) == 200 {
						if err := q.ObserveBatch(i%k, batch); err != nil {
							t.Fatal(err)
						}
						batch = batch[:0]
					}
				}
				if err := q.Flush(); err != nil {
					t.Fatal(err)
				}
				est := q.Query()
				if !est.Saturated() {
					t.Fatalf("estimate not saturated after %d items", n)
				}
				var maxErr float64
				for x := 1.0; x <= 98; x++ {
					if e := math.Abs(est.CDF(x) - oracle.CDF(x)); e > maxErr {
						maxErr = e
					}
				}
				if maxErr > eps {
					t.Errorf("max CDF error %.4f > eps %.2f", maxErr, eps)
				}
			})
		}
	}
}
