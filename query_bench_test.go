package wrs_test

import (
	"testing"

	"wrs"
)

// query_bench_test.go guards the non-blocking query paths' allocation
// behavior: both Sample and Candidates pre-size one snapshot buffer at
// 2·s entries per shard (released sample + withheld pool) and reuse it
// across shards, so a query costs O(shards) small allocations — the
// closure per DoShard and the sort — never a per-shard growth cascade.

func feedSampler(tb testing.TB, shards int) *wrs.DistributedSampler {
	tb.Helper()
	ds, err := wrs.NewDistributedSampler(4, 16, wrs.WithSeed(2), wrs.WithShards(shards))
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := ds.Observe(i%4, wrs.Item{ID: uint64(i), Weight: float64(1 + i%50)}); err != nil {
			tb.Fatal(err)
		}
	}
	return ds
}

func feedTracker(tb testing.TB, shards int) *wrs.HeavyHitterTracker {
	tb.Helper()
	h, err := wrs.NewHeavyHitterTracker(4, 0.1, 0.1, wrs.WithSeed(3), wrs.WithShards(shards))
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := h.Observe(i%4, wrs.Item{ID: uint64(i), Weight: float64(1 + i%50)}); err != nil {
			tb.Fatal(err)
		}
	}
	return h
}

func BenchmarkSampleQueryAllocs(b *testing.B) {
	for _, shards := range []int{1, 7} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			ds := feedSampler(b, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(ds.Sample()) != 16 {
					b.Fatal("bad sample")
				}
			}
		})
	}
}

func BenchmarkCandidatesQueryAllocs(b *testing.B) {
	for _, shards := range []int{1, 7} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			h := feedTracker(b, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(h.Candidates()) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// TestQueryAllocsBounded is the regression guard behind the benchmarks:
// a pre-sized snapshot buffer keeps both query paths at a handful of
// allocations even at 7 shards. A per-shard growth cascade (the bug
// this pins out: Candidates used to start from a nil slice) blows well
// past these bounds.
func TestQueryAllocsBounded(t *testing.T) {
	ds := feedSampler(t, 7)
	h := feedTracker(t, 7)
	if got := testing.AllocsPerRun(50, func() { ds.Sample() }); got > 16 {
		t.Errorf("Sample: %.1f allocs/op at 7 shards, want <= 16", got)
	}
	if got := testing.AllocsPerRun(50, func() { h.Candidates() }); got > 24 {
		t.Errorf("Candidates: %.1f allocs/op at 7 shards, want <= 24", got)
	}
}
