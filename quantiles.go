package wrs

import (
	"wrs/internal/core"
	"wrs/internal/quantile"
	rt "wrs/internal/runtime"
	"wrs/internal/xrand"
)

// QuantileEstimate is the answer of the Quantiles application: a
// queryable estimate of the stream's weight-CDF
// F(x) = (total weight on items of weight <= x) / W and its rank
// quantiles, built from the maintained weighted SWOR with the Section 5
// key calibration as the normalizer. With probability 1-delta every CDF
// value is within eps of the truth. The zero value is an empty stream.
type QuantileEstimate struct {
	sum quantile.Summary
}

// Total returns the estimated total weight W (exact until the stream
// outgrows the sample; see Saturated).
func (q QuantileEstimate) Total() float64 { return q.sum.Total() }

// CDF returns the estimated fraction of total weight carried by items
// of weight <= x — a nondecreasing step function from 0 to 1.
func (q QuantileEstimate) CDF(x float64) float64 { return q.sum.CDF(x) }

// Quantile returns the smallest sampled weight x with CDF(x) >= phi.
// ok is false while the stream is empty.
func (q QuantileEstimate) Quantile(phi float64) (x float64, ok bool) { return q.sum.Quantile(phi) }

// Saturated reports estimation mode: false means the sample still holds
// the entire stream and every answer is exact.
func (q QuantileEstimate) Saturated() bool { return q.sum.Saturated() }

// Support returns the number of sampled support points behind the
// estimate.
func (q QuantileEstimate) Support() int { return q.sum.Support() }

// Quantiles is the fourth application, and the proof that the App/Open
// layer carries its weight: it ships entirely through the generic API —
// no dedicated tracker type — yet runs over every runtime and any shard
// count like the other three. It estimates the weight-CDF and rank
// quantiles of the distributed stream from the maintained SWOR of size
// s = ceil(4·ln(2/delta)/eps²), normalized with the Section 5 key
// calibration (Horvitz-Thompson weights conditioned on the s-th largest
// key); eps, delta in (0,1). Open it directly:
//
//	q, err := wrs.Open(wrs.Quantiles(k, 0.1, 0.05), wrs.WithShards(4))
//	...
//	median, _ := q.Query().Quantile(0.5)
func Quantiles(k int, eps, delta float64) App[QuantileEstimate] {
	return &quantilesApp{k: k, params: quantile.Params{Eps: eps, Delta: delta}}
}

type quantilesApp struct {
	k      int
	params quantile.Params
	coords []*core.Coordinator
}

func (a *quantilesApp) Sites() int { return a.k }

func (a *quantilesApp) reset() { a.coords = nil }

func (a *quantilesApp) Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error) {
	if a.coords != nil {
		return nil, errAppReused
	}
	if err := a.params.Validate(); err != nil {
		return nil, err
	}
	insts, coords, err := samplerInstances(k, a.params.SampleSize(), shards, master)
	if err != nil {
		return nil, err
	}
	a.coords = coords
	return insts, nil
}

func (a *quantilesApp) Query(snaps Snapshots) QuantileEstimate {
	s := a.params.SampleSize()
	entries := snapshotShards(snaps, a.coords, s)
	return QuantileEstimate{sum: quantile.Summarize(entries, s)}
}
