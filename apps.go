package wrs

import (
	"errors"

	"wrs/internal/core"
	"wrs/internal/heavyhitter"
	"wrs/internal/l1track"
	rt "wrs/internal/runtime"
	"wrs/internal/xrand"
)

// errAppReused guards the one-shot binding of a descriptor to a Handle:
// per-shard query state lives on the descriptor, so sharing one across
// two Opens would cross their queries.
var errAppReused = errors.New("wrs: App descriptor already opened; build a new one per Open")

// Sampler is the plain weighted-SWOR application (Section 3): the
// maintained sample itself is the answer. Query returns min(t, s)
// items, largest key first. NewDistributedSampler is a thin wrapper
// over Open(Sampler(k, s)).
func Sampler(k, s int) App[[]Sampled] { return &samplerApp{k: k, s: s} }

type samplerApp struct {
	k, s   int
	coords []*core.Coordinator
}

func (a *samplerApp) Sites() int { return a.k }

func (a *samplerApp) reset() { a.coords = nil }

func (a *samplerApp) Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error) {
	if a.coords != nil {
		return nil, errAppReused
	}
	insts, coords, err := samplerInstances(k, a.s, shards, master)
	if err != nil {
		return nil, err
	}
	a.coords = coords
	return insts, nil
}

// samplerInstances builds the plain-sampler protocol fabric — one
// core coordinator plus k core sites per shard, RNGs split in the
// contract order (per shard: coordinator, then sites 0..k-1) — shared
// by every app whose instances are the unmodified sampler (Sampler,
// Quantiles). One implementation, so the DESIGN.md §10 replay contract
// cannot silently diverge between them.
func samplerInstances(k, s, shards int, master *xrand.RNG) ([]rt.Instance, []*core.Coordinator, error) {
	cfg := core.Config{K: k, S: s}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	insts := make([]rt.Instance, shards)
	coords := make([]*core.Coordinator, shards)
	for p := range insts {
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]*core.Site, k)
		for i := 0; i < k; i++ {
			sites[i] = core.NewSite(i, cfg, master.Split())
		}
		insts[p] = rt.Instance{Cfg: cfg, Coord: coord, Sites: rt.SiteList(sites)}
		coords[p] = coord
	}
	return insts, coords, nil
}

func (a *samplerApp) Query(snaps Snapshots) []Sampled {
	entries := snapshotShards(snaps, a.coords, a.s)
	entries = core.TopSample(entries, a.s)
	out := make([]Sampled, len(entries))
	for i, e := range entries {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out
}

// HeavyHitters is the residual heavy-hitter application (Section 4):
// a weighted SWOR of size ceil(6·ln(1/(eps·delta))/eps) whose query
// returns at most ceil(2/eps) items, heaviest first; with probability
// 1-delta it contains every item whose weight is at least eps times the
// residual L1. NewHeavyHitterTracker is a thin wrapper over
// Open(HeavyHitters(k, eps, delta)).
func HeavyHitters(k int, eps, delta float64) App[[]Item] {
	return &hhApp{k: k, params: heavyhitter.Params{Eps: eps, Delta: delta}}
}

type hhApp struct {
	k      int
	params heavyhitter.Params
	coords []*core.Coordinator
}

func (a *hhApp) Sites() int { return a.k }

func (a *hhApp) reset() { a.coords = nil }

func (a *hhApp) Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error) {
	if a.coords != nil {
		return nil, errAppReused
	}
	insts := make([]rt.Instance, shards)
	a.coords = make([]*core.Coordinator, shards)
	for p := range insts {
		tr, err := heavyhitter.NewTracker(k, a.params, master)
		if err != nil {
			a.coords = nil
			return nil, err
		}
		insts[p] = rt.Instance{Cfg: tr.Coord.Config(), Coord: tr.Coord, Sites: rt.SiteList(tr.Sites)}
		a.coords[p] = tr.Coord
	}
	return insts, nil
}

func (a *hhApp) Query(snaps Snapshots) []Item {
	entries := snapshotShards(snaps, a.coords, a.params.SampleSize())
	items := heavyhitter.CandidatesFrom(entries, a.params)
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = fromInternal(it)
	}
	return out
}

// L1 is the count-tracking application (Section 5): every update is
// duplicated l = s/(2·eps) times into a weighted SWOR whose s-th
// largest key calibrates the total weight; the query is the (1±eps)
// estimate of the global L1. With P shards each partition is
// provisioned at delta/P so the union bound over the P summed
// estimators preserves the overall 1-delta guarantee. NewL1Tracker is a
// thin wrapper over Open(L1(k, eps, delta)).
func L1(k int, eps, delta float64) App[float64] {
	return &l1App{k: k, params: l1track.DupParams{Eps: eps, Delta: delta}}
}

type l1App struct {
	k      int
	params l1track.DupParams
	coords []*l1track.DupCoordinator
}

func (a *l1App) Sites() int { return a.k }

func (a *l1App) reset() { a.coords = nil }

func (a *l1App) Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error) {
	if a.coords != nil {
		return nil, errAppReused
	}
	p := a.params
	p.Delta /= float64(shards)
	insts := make([]rt.Instance, shards)
	a.coords = make([]*l1track.DupCoordinator, shards)
	for i := range insts {
		coord, sites, err := l1track.NewDupTracker(k, p, master)
		if err != nil {
			a.coords = nil
			return nil, err
		}
		insts[i] = rt.Instance{Cfg: coord.Core().Config(), Coord: coord, Sites: rt.SiteList(sites)}
		a.coords[i] = coord
	}
	return insts, nil
}

func (a *l1App) Query(snaps Snapshots) float64 {
	var est float64
	for p, coord := range a.coords {
		coord := coord
		snaps.View(p, func() { est += coord.Estimate() })
	}
	return est
}

// snapshotShards collects every shard coordinator's sample candidates
// into one pre-sized buffer: each shard is snapshotted under its own
// ingest lock (an O(s) copy, no sorting), so the buffer holds at most
// 2s entries per shard — released sample plus withheld pool — and the
// sort/merge runs outside every lock.
func snapshotShards(snaps Snapshots, coords []*core.Coordinator, s int) []core.SampleEntry {
	entries := make([]core.SampleEntry, 0, 2*s*len(coords))
	for p, coord := range coords {
		coord := coord
		snaps.View(p, func() { entries = coord.Snapshot(entries) })
	}
	return entries
}
