package wrs

import (
	"fmt"

	"wrs/internal/core"
	rt "wrs/internal/runtime"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// WindowSample is the Windowed application's answer: the weighted SWOR
// over the union of sub-stream windows, plus coverage statistics.
type WindowSample struct {
	// Items is the sample — up to s items, largest key first.
	Items []Sampled
	// Observed counts the sub-stream positions the coordinators have
	// accounted for, summed over every site and shard. It can trail the
	// true arrival count while sites' newest items are still buffered
	// locally (which never affects Items: the expiry of any candidate
	// the coordinator holds forces a clock update first).
	Observed int64
	// Window counts the positions currently inside some sub-stream
	// window — the population Items samples from, at most
	// sites × shards × width.
	Window int
	// Retained counts the candidates held across shard coordinators —
	// expected O(s·log(width/s)) per sub-stream, far below Window.
	Retained int
}

// Windowed is the distributed sliding-window application — the fifth
// App plugin, and the paper's Section 6 open future-work direction
// made runnable on every runtime and shard count: a weighted sample
// without replacement of size s over the most recent width items of
// each site's shard-local sub-stream, merged into one sample over the
// union of those windows.
//
// The window is per sub-stream: each of the k site machines (per
// shard) stamps its arrivals with a local sequence number and keeps the
// most recent width of them; a query samples the union of all current
// sub-windows. With one site and one shard this is exactly the classic
// sliding window of NewSlidingReservoir; with more, "recent" is defined
// per stream — each source contributes its own last width items, so a
// quiet site's recent history is not flushed out by a noisy one. Note
// the sampled population therefore grows with WithShards(P): every
// (site, shard) machine keeps its own width-item window.
//
// Unlike every other application, the per-shard state is non-monotone —
// items expire — so there are no epoch thresholds and no broadcasts:
// sites push exactly the candidates that could be sampled (their local
// window top-s, the union of which provably contains the merged
// sample), buffer the rest in an O(s·log(width/s)) dominance structure,
// and promote buffered items with their original stamps when expiries
// pull them into the top-s. Expiry is applied from sequence stamps at
// the coordinator, so queries stay exact on every runtime with no
// synchrony assumption. See DESIGN.md §11.
func Windowed(k, s, width int) App[WindowSample] {
	return &windowedApp{k: k, s: s, width: width}
}

type windowedApp struct {
	k, s, width int
	coords      []*core.WindowCoordinator
}

func (a *windowedApp) Sites() int { return a.k }

func (a *windowedApp) reset() { a.coords = nil }

func (a *windowedApp) Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error) {
	if a.coords != nil {
		return nil, errAppReused
	}
	cfg := core.Config{K: k, S: a.s}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.width < 1 {
		return nil, fmt.Errorf("wrs: window width must be >= 1, got %d", a.width)
	}
	insts := make([]rt.Instance, shards)
	a.coords = make([]*core.WindowCoordinator, shards)
	for p := range insts {
		coord := core.NewWindowCoordinator(cfg, a.width, master.Split())
		sites := make([]*core.WindowSite, k)
		for i := 0; i < k; i++ {
			sites[i] = core.NewWindowSite(i, cfg, a.width, master.Split())
		}
		insts[p] = rt.Instance{Cfg: cfg, Coord: coord, Sites: rt.SiteList(sites)}
		a.coords[p] = coord
	}
	return insts, nil
}

func (a *windowedApp) Query(snaps Snapshots) WindowSample {
	entries := make([]window.Entry, 0, 2*a.s*len(a.coords))
	var cov core.WindowCoverage
	for p, coord := range a.coords {
		coord := coord
		snaps.View(p, func() {
			var c core.WindowCoverage
			entries, c = coord.SnapshotWindow(entries)
			cov.Add(c)
		})
	}
	// Everything below runs outside every ingest lock: sort the merged
	// candidates (window.TopEntries — deterministic, key descending with
	// ID tie-break) and truncate to s. Per-shard candidate sets sandwich
	// their shard's true window top-s, so the merged top-s is exact
	// (DESIGN.md §11).
	entries = window.TopEntries(entries, a.s)
	items := make([]Sampled, len(entries))
	for i, e := range entries {
		items[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return WindowSample{Items: items, Observed: cov.Observed, Window: cov.Live, Retained: cov.Retained}
}
