#!/usr/bin/env bash
# check_api_surface.sh — guard the root wrs package's exported surface.
#
# Fails the build if any symbol recorded in .github/api_surface.txt is
# missing from the current `go doc -all` output: once a type, function,
# or method ships, a later change may add to the surface but never lose
# it. After an intentional, additive API change, regenerate the baseline
# and commit it:
#
#   ./.github/check_api_surface.sh -write
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=.github/api_surface.txt

surface() {
    # Exported package-level funcs, types, and methods, normalized:
    # struct/interface bodies stripped, trailing whitespace removed.
    go doc -all . \
        | grep -E '^(func|type) [A-Z]|^func \(' \
        | sed -E 's/ *\{.*$//; s/[[:space:]]+$//' \
        | sort -u
}

if [ "${1:-}" = "-write" ]; then
    surface >"$baseline"
    echo "wrote $(wc -l <"$baseline") symbols to $baseline"
    exit 0
fi

missing=$(comm -23 <(sort -u "$baseline") <(surface))
if [ -n "$missing" ]; then
    echo "exported API surface lost pre-existing symbols:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "API surface OK ($(wc -l <"$baseline") baseline symbols all present)"
