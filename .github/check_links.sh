#!/usr/bin/env bash
# check_links.sh — verify that every relative markdown link in the
# project documentation points at a file that exists.
#
# Scope: README.md, DESIGN.md, PAPER.md, PAPERS.md, docs/*.md. External
# links (http/https) are not fetched; anchors are stripped before the
# existence check (a pure-anchor link like (#section) is skipped).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md DESIGN.md PAPER.md PAPERS.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Inline markdown links: [text](target)
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;; # same-file anchor
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "$doc: broken relative link -> $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check failed" >&2
    exit 1
fi
echo "markdown links OK"
