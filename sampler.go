package wrs

import (
	"wrs/internal/sample"
	"wrs/internal/xrand"
)

// Reservoir is a centralized (single-stream) weighted sampler without
// replacement — the Efraimidis–Spirakis scheme the paper's distributed
// protocol generalizes. Use it when all data passes through one process.
type Reservoir struct {
	es *sample.ES
}

// NewReservoir returns a weighted SWOR reservoir of size s. It is a
// single-stream sampler: WithRuntime and WithShards are rejected.
func NewReservoir(s int, opts ...Option) (*Reservoir, error) {
	if s < 1 {
		return nil, errSampleSize(s)
	}
	o := buildOptions(opts)
	if err := o.centralizedOnly("NewReservoir"); err != nil {
		return nil, err
	}
	return &Reservoir{es: sample.NewES(s, xrand.New(o.seed))}, nil
}

// Observe feeds one item; the weight must be positive and finite.
func (r *Reservoir) Observe(it Item) error {
	if err := validateWeight(it.Weight); err != nil {
		return err
	}
	r.es.Observe(it.internal())
	return nil
}

// Sample returns the current weighted SWOR, largest key first.
func (r *Reservoir) Sample() []Sampled {
	items := r.es.Sample()
	keys := r.es.Keys()
	out := make([]Sampled, len(items))
	for i := range items {
		out[i] = Sampled{Item: fromInternal(items[i]), Key: keys[i]}
	}
	return out
}

// N returns the number of items observed.
func (r *Reservoir) N() int { return r.es.N() }

// WithReplacement is a centralized weighted sampler *with* replacement: s
// independent single-item samples. On heavily skewed streams its slots
// collapse onto the few heavy items — the failure mode that motivates
// sampling without replacement (Section 1 of the paper).
type WithReplacement struct {
	swr *sample.SWR
}

// NewWithReplacement returns a weighted SWR sampler of size s. It is a
// single-stream sampler: WithRuntime and WithShards are rejected.
func NewWithReplacement(s int, opts ...Option) (*WithReplacement, error) {
	if s < 1 {
		return nil, errSampleSize(s)
	}
	o := buildOptions(opts)
	if err := o.centralizedOnly("NewWithReplacement"); err != nil {
		return nil, err
	}
	return &WithReplacement{swr: sample.NewSWR(s, xrand.New(o.seed))}, nil
}

// Observe feeds one item; the weight must be positive and finite.
func (w *WithReplacement) Observe(it Item) error {
	if err := validateWeight(it.Weight); err != nil {
		return err
	}
	w.swr.Observe(it.internal())
	return nil
}

// Sample returns the s slots (empty before the first item).
func (w *WithReplacement) Sample() []Item {
	items := w.swr.Sample()
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = fromInternal(it)
	}
	return out
}

// N returns the number of items observed.
func (w *WithReplacement) N() int { return w.swr.N() }
