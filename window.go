package wrs

import (
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// SlidingReservoir maintains a weighted sample without replacement over
// the most recent `width` items of a single stream — the sliding-window
// extension the paper lists as future work (Section 6). It retains an
// expected O(s·log(width/s)) items, far below the window size.
type SlidingReservoir struct {
	w *window.Sampler
}

// NewSlidingReservoir returns a sliding-window sampler with sample size s
// over a window of `width` items. It is a single-stream sampler:
// WithRuntime and WithShards are rejected.
func NewSlidingReservoir(s, width int, opts ...Option) (*SlidingReservoir, error) {
	o := buildOptions(opts)
	if err := o.centralizedOnly("NewSlidingReservoir"); err != nil {
		return nil, err
	}
	w, err := window.New(s, width, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	return &SlidingReservoir{w: w}, nil
}

// Observe feeds one item; the weight must be positive and finite.
func (r *SlidingReservoir) Observe(it Item) error {
	return r.w.Observe(it.internal())
}

// ObserveBatch feeds a slice of items in order — the batch counterpart
// of Observe, matching the ingest surface of the distributed
// applications. It stops at the first invalid weight (items before it
// are already observed).
func (r *SlidingReservoir) ObserveBatch(items []Item) error {
	for _, it := range items {
		if err := r.w.Observe(it.internal()); err != nil {
			return err
		}
	}
	return nil
}

// Sample returns the weighted SWOR of the current window, largest key
// first (size min(s, window fill)).
func (r *SlidingReservoir) Sample() []Sampled {
	entries := r.w.Sample()
	out := make([]Sampled, len(entries))
	for i, e := range entries {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out
}

// Retained returns how many items are currently buffered.
func (r *SlidingReservoir) Retained() int { return r.w.Retained() }

// N returns the number of items observed.
func (r *SlidingReservoir) N() int { return r.w.N() }
