// Package wrs is a Go implementation of "Weighted Reservoir Sampling from
// Distributed Streams" (Jayaram, Sharma, Tirthapura, Woodruff — PODS
// 2019): message-optimal weighted sampling without replacement over k
// distributed sites, plus the two applications the paper builds on it —
// residual heavy-hitter monitoring and L1 (count) tracking.
//
// # The model
//
// k sites each observe a local stream of weighted items and talk to one
// coordinator. A query at the coordinator must return, at any instant, a
// weighted sample without replacement of everything observed so far. The
// quality metric is message complexity: the paper's algorithm achieves
// the optimal O(k·log(W/s)/log(1+k/s)) expected messages, versus the
// naive O(k·s·logW).
//
// # Quick start
//
//	s, _ := wrs.NewDistributedSampler(8, 16, wrs.WithSeed(1))
//	for i, w := range weights {
//	    s.Observe(i%8, wrs.Item{ID: uint64(i), Weight: w})
//	}
//	for _, e := range s.Sample() {
//	    fmt.Println(e.Item.ID, e.Item.Weight, e.Key)
//	}
//	fmt.Println(s.Stats().Total(), "messages")
//
// DistributedSampler drives the protocol in-process with deterministic,
// synchronous message delivery (the model the paper analyzes).
// HeavyHitterTracker and L1Tracker expose the Section 4 and Section 5
// constructions. Reservoir and WithReplacement are the centralized
// single-stream samplers for comparison and local use.
//
// # Applications as plugins
//
// Underneath, every application is a plugin: an App[Q] descriptor that
// builds per-shard protocol instances and answers queries of type Q
// from locked per-shard snapshots. Open(app, opts...) returns a
// Handle[Q] owning the one shared implementation of Observe,
// ObserveBatch, Flush, Stats, Close, Shards, and K, plus a non-blocking
// typed Query:
//
//	q, _ := wrs.Open(wrs.Quantiles(8, 0.1, 0.05), wrs.WithShards(4))
//	... q.Observe(site, item) ...
//	median, _ := q.Query().Quantile(0.5)
//
// Five applications ship: Sampler (the maintained SWOR itself),
// HeavyHitters (Section 4), L1 (Section 5), Quantiles — weight-CDF
// and rank-quantile estimation from the maintained sample, normalized
// with the Section 5 key calibration — and Windowed, the distributed
// sliding-window SWOR (the paper's Section 6 future-work direction):
// a sample over the most recent width items of every site's
// sub-stream, push-only and exact on every runtime. The legacy
// constructors (NewDistributedSampler, NewHeavyHitterTracker,
// NewL1Tracker) are thin wrappers over Open and remain bit-identical
// for fixed seeds. The plugin contract — RNG split order,
// union-mergeability of per-shard answers — is specified in DESIGN.md
// §10 and walked through in docs/PLUGINS.md.
//
// # Runtimes
//
// The protocol state machines are transport-agnostic; WithRuntime
// selects what drives them, for every application:
//
//	wrs.NewDistributedSampler(k, s)                                    // Sequential(): deterministic simulator
//	wrs.NewDistributedSampler(k, s, wrs.WithRuntime(wrs.Goroutines())) // goroutine-per-site cluster
//	wrs.Open(wrs.HeavyHitters(k, eps, delta),
//	    wrs.WithRuntime(wrs.TCP("127.0.0.1:0")))                       // real TCP connections
//
// On asynchronous runtimes, Flush is a delivery barrier and Close
// shuts the runtime down; ConcurrentSampler remains as the Goroutines
// configuration behind its historical drain-then-sample API.
//
// # Sharding
//
// WithShards(P) partitions the protocol into a fabric of P full
// instances routed by a deterministic hash of the item ID, each shard
// with its own coordinator behind its own ingest lock — coordinator
// throughput scales with cores while queries stay exact (precision
// sampling makes per-shard samples exactly mergeable). Over TCP the
// shards share one server and one connection per site. The trade:
// roughly 1.8x messages per doubling of P (DESIGN.md §9).
//
// See DESIGN.md for the system inventory and docs/EXPERIMENTS.md for
// the reproduction of every quantitative claim in the paper.
package wrs
